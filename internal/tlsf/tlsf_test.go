package tlsf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sdrad/internal/mem"
)

// newHeap builds a heap over a fresh simulated region of the given size.
func newHeap(t testing.TB, size uint64) (*Heap, *mem.CPU) {
	t.Helper()
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, err := as.MapAnon(int(size), mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Init(cpu, base, size)
	if err != nil {
		t.Fatal(err)
	}
	return h, cpu
}

func TestInitErrors(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, _ := as.MapAnon(mem.PageSize, mem.ProtRW, 0)
	if _, err := Init(cpu, base+1, mem.PageSize); !errors.Is(err, ErrBadRegion) {
		t.Errorf("misaligned Init err = %v", err)
	}
	if _, err := Init(cpu, base, 64); !errors.Is(err, ErrBadRegion) {
		t.Errorf("tiny Init err = %v", err)
	}
	if MinRegion() <= Overhead() {
		t.Error("MinRegion must exceed Overhead")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, err := h.Alloc(cpu, 100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p)%8 != 0 {
		t.Error("allocation not aligned")
	}
	if got := h.UsableSize(cpu, p); got < 100 {
		t.Errorf("usable size = %d", got)
	}
	cpu.Memset(p, 0x5A, 100) // memory is writable
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
	if h.AllocCount() != 1 || h.FreeCount() != 1 {
		t.Errorf("counters = %d/%d", h.AllocCount(), h.FreeCount())
	}
}

func TestAllocZeroed(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, err := h.Alloc(cpu, 64)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Memset(p, 0xFF, 64)
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	q, err := h.AllocZeroed(cpu, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if cpu.ReadU8(q+mem.Addr(i)) != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
}

func TestZeroAndHugeRequests(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, err := h.Alloc(cpu, 0)
	if err != nil || p == 0 {
		t.Errorf("Alloc(0) = (%v, %v), want a minimal block", p, err)
	}
	if _, err := h.Alloc(cpu, maxAlloc+1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge request err = %v", err)
	}
	if _, err := h.Alloc(cpu, 1<<30); !errors.Is(err, ErrOOM) {
		t.Errorf("oversize-for-pool err = %v", err)
	}
}

func TestBadFree(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, _ := h.Alloc(cpu, 32)
	if err := h.Free(cpu, 0); !errors.Is(err, ErrBadFree) {
		t.Errorf("Free(0) err = %v", err)
	}
	if err := h.Free(cpu, 0x100); !errors.Is(err, ErrBadFree) {
		t.Errorf("Free(foreign) err = %v", err)
	}
	if err := h.Free(cpu, p+1); !errors.Is(err, ErrBadFree) {
		t.Errorf("Free(unaligned) err = %v", err)
	}
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(cpu, p); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free err = %v", err)
	}
}

func TestCoalescing(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	// Allocate three adjacent blocks, then free in an order that
	// exercises prev-, next-, and both-side coalescing.
	a, _ := h.Alloc(cpu, 256)
	b, _ := h.Alloc(cpu, 256)
	c, _ := h.Alloc(cpu, 256)
	if err := h.Free(cpu, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(cpu, c); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(cpu, b); err != nil { // merges with both neighbours
		t.Fatal(err)
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
	_, _, usedBlocks, freeBlocks := h.Usage(cpu)
	if usedBlocks != 0 || freeBlocks != 1 {
		t.Errorf("after full free: %d used, %d free blocks, want 0/1", usedBlocks, freeBlocks)
	}
}

func TestExhaustionAndReuse(t *testing.T) {
	h, cpu := newHeap(t, 32*1024)
	var ptrs []mem.Addr
	for {
		p, err := h.Alloc(cpu, 512)
		if err != nil {
			if !errors.Is(err, ErrOOM) {
				t.Fatalf("unexpected err %v", err)
			}
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) < 10 {
		t.Fatalf("only %d allocations before OOM", len(ptrs))
	}
	for _, p := range ptrs {
		if err := h.Free(cpu, p); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything the full capacity is available again.
	ptrs2 := 0
	for {
		_, err := h.Alloc(cpu, 512)
		if err != nil {
			break
		}
		ptrs2++
	}
	if ptrs2 != len(ptrs) {
		t.Errorf("reuse capacity %d != original %d (fragmentation after full free)", ptrs2, len(ptrs))
	}
}

func TestAddRegion(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	b1, _ := as.MapAnon(16*1024, mem.ProtRW, 0)
	h, err := Init(cpu, b1, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust, then grow.
	var err2 error
	for err2 == nil {
		_, err2 = h.Alloc(cpu, 1024)
	}
	b2, _ := as.MapAnon(16*1024, mem.ProtRW, 0)
	if err := h.AddRegion(cpu, b2, 16*1024); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(cpu, 1024); err != nil {
		t.Errorf("alloc after AddRegion: %v", err)
	}
	if got := len(h.Regions()); got != 2 {
		t.Errorf("regions = %d", got)
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRegion(cpu, b2+1, 4096); !errors.Is(err, ErrBadRegion) {
		t.Errorf("misaligned AddRegion err = %v", err)
	}
}

func TestMergeAdoptsChildBlocks(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	pb, _ := as.MapAnon(32*1024, mem.ProtRW, 0)
	parent, err := Init(cpu, pb, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := as.MapAnon(32*1024, mem.ProtRW, 0)
	child, err := Init(cpu, cb, 32*1024)
	if err != nil {
		t.Fatal(err)
	}

	live, _ := child.Alloc(cpu, 128)
	cpu.Memset(live, 0x77, 128)
	dead, _ := child.Alloc(cpu, 256)
	if err := child.Free(cpu, dead); err != nil {
		t.Fatal(err)
	}

	if err := parent.Merge(cpu, child); err != nil {
		t.Fatal(err)
	}
	// Child is dead.
	if _, err := child.Alloc(cpu, 8); !errors.Is(err, ErrMergedHeap) {
		t.Errorf("child alloc after merge err = %v", err)
	}
	if err := child.Free(cpu, live); !errors.Is(err, ErrMergedHeap) {
		t.Errorf("child free after merge err = %v", err)
	}
	// The live allocation survived and is now freeable through the parent.
	if got := cpu.ReadU8(live + 127); got != 0x77 {
		t.Errorf("live data corrupted by merge: %#x", got)
	}
	if err := parent.Free(cpu, live); err != nil {
		t.Errorf("freeing adopted block: %v", err)
	}
	if err := parent.Check(cpu); err != nil {
		t.Fatal(err)
	}
	// Parent can allocate out of adopted space: exhaust well past its own
	// region's capacity.
	total := 0
	for {
		_, err := parent.Alloc(cpu, 1024)
		if err != nil {
			break
		}
		total++
	}
	if total < 40 { // ~56 KiB of combined capacity / 1 KiB
		t.Errorf("combined capacity after merge too small: %d KiB", total)
	}
}

func TestMergeOfMergedHeapFails(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	mk := func() *Heap {
		b, _ := as.MapAnon(16*1024, mem.ProtRW, 0)
		h, err := Init(cpu, b, 16*1024)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b, c := mk(), mk(), mk()
	if err := a.Merge(cpu, b); err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(cpu, b); !errors.Is(err, ErrMergedHeap) {
		t.Errorf("re-merge err = %v", err)
	}
	if err := b.Merge(cpu, c); !errors.Is(err, ErrMergedHeap) {
		t.Errorf("merged-heap merge err = %v", err)
	}
	if err := b.Check(cpu); !errors.Is(err, ErrMergedHeap) {
		t.Errorf("merged-heap check err = %v", err)
	}
}

func TestWalkAndUsage(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p1, _ := h.Alloc(cpu, 100)
	p2, _ := h.Alloc(cpu, 200)
	_ = p2
	used, free, usedBlocks, freeBlocks := h.Usage(cpu)
	if usedBlocks != 2 || freeBlocks != 1 {
		t.Errorf("blocks = %d used / %d free", usedBlocks, freeBlocks)
	}
	if used < 300 || free == 0 {
		t.Errorf("usage = %d used / %d free bytes", used, free)
	}
	// Early-terminating walk.
	visits := 0
	h.Walk(cpu, func(BlockInfo) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stop walk visited %d blocks", visits)
	}
	_ = p1
}

func TestMappingMonotonicity(t *testing.T) {
	// Classes must be monotonically non-decreasing in size.
	prevFL, prevSL := -1, -1
	for size := uint64(minBlockSize); size < 1<<20; size += 8 {
		fl, sl := mappingInsert(size)
		if fl < prevFL || (fl == prevFL && sl < prevSL) {
			t.Fatalf("mapping not monotonic at %d: (%d,%d) after (%d,%d)", size, fl, sl, prevFL, prevSL)
		}
		if fl >= flIndexCount || sl >= slIndexCount {
			t.Fatalf("mapping out of range at %d: (%d,%d)", size, fl, sl)
		}
		prevFL, prevSL = fl, sl
	}
}

func TestMappingSearchRoundsUp(t *testing.T) {
	// Any block in the class found by mappingSearch(n) must be >= n.
	// Verify via the class lower bound: mappingInsert of the class start.
	for _, n := range []uint64{24, 100, 255, 256, 257, 300, 1000, 4096, 65536, 1 << 20} {
		fl, sl := mappingSearch(n)
		// Lower bound of class (fl, sl):
		var lo uint64
		if fl == 0 {
			lo = uint64(sl) * (smallBlockSize / slIndexCount)
		} else {
			base := uint64(1) << uint(fl+flIndexShift-1)
			lo = base + uint64(sl)*(base/slIndexCount)
		}
		if lo < n && fl != 0 {
			t.Errorf("mappingSearch(%d) class (%d,%d) has lower bound %d < request", n, fl, sl, lo)
		}
	}
}

// Reference-model fuzz: random alloc/free interleavings compared against a
// Go map model; invariants checked continuously.
func TestRandomizedAgainstModel(t *testing.T) {
	h, cpu := newHeap(t, 256*1024)
	rng := rand.New(rand.NewSource(42))
	type allocation struct {
		ptr  mem.Addr
		size int
		tag  byte
	}
	var live []allocation
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := 1 + rng.Intn(2000)
			p, err := h.Alloc(cpu, uint64(size))
			if errors.Is(err, ErrOOM) {
				// Free half of everything and retry later.
				for j := 0; j < len(live); j += 2 {
					if err := h.Free(cpu, live[j].ptr); err != nil {
						t.Fatalf("iter %d: free: %v", i, err)
					}
				}
				nl := live[:0]
				for j := 1; j < len(live); j += 2 {
					nl = append(nl, live[j])
				}
				live = nl
				continue
			}
			if err != nil {
				t.Fatalf("iter %d: alloc(%d): %v", i, size, err)
			}
			tag := byte(i)
			cpu.Memset(p, tag, size)
			live = append(live, allocation{p, size, tag})
		} else {
			k := rng.Intn(len(live))
			a := live[k]
			// Contents must be intact (no allocator scribbling).
			if got := cpu.ReadU8(a.ptr + mem.Addr(a.size-1)); got != a.tag {
				t.Fatalf("iter %d: block tail corrupted: %#x != %#x", i, got, a.tag)
			}
			if got := cpu.ReadU8(a.ptr); got != a.tag {
				t.Fatalf("iter %d: block head corrupted", i)
			}
			if err := h.Free(cpu, a.ptr); err != nil {
				t.Fatalf("iter %d: free: %v", i, err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%250 == 0 {
			if err := h.Check(cpu); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap each other.
func TestQuickNoOverlap(t *testing.T) {
	prop := func(sizes []uint16) bool {
		h, cpu := newHeap(t, 512*1024)
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, s := range sizes {
			n := uint64(s%4096 + 1)
			p, err := h.Alloc(cpu, n)
			if errors.Is(err, ErrOOM) {
				break
			}
			if err != nil {
				return false
			}
			lo, hi := uint64(p), uint64(p)+n
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return h.Check(cpu) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: free returns all bytes — usable free space after freeing all
// allocations equals the initial free space.
func TestQuickConservation(t *testing.T) {
	prop := func(sizes []uint16) bool {
		h, cpu := newHeap(t, 512*1024)
		_, free0, _, _ := h.Usage(cpu)
		var ptrs []mem.Addr
		for _, s := range sizes {
			p, err := h.Alloc(cpu, uint64(s%4096+1))
			if err != nil {
				break
			}
			ptrs = append(ptrs, p)
		}
		for _, p := range ptrs {
			if h.Free(cpu, p) != nil {
				return false
			}
		}
		_, free1, _, freeBlocks := h.Usage(cpu)
		return free1 == free0 && freeBlocks == 1 && h.Check(cpu) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	h, cpu := newHeap(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Alloc(cpu, 128)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(cpu, p); err != nil {
			b.Fatal(err)
		}
	}
}
