// Package tlsf implements the Two-Level Segregated Fit dynamic memory
// allocator of Masmano et al. (ECRTS 2004) over the simulated address
// space of internal/mem.
//
// SDRaD replaces the glibc allocator with TLSF because TLSF natively
// manages fully disjoint memory pools: each isolated domain gets its own
// control structure and pool, so an allocation made inside a domain is
// guaranteed to be satisfied from memory tagged with that domain's
// protection key (paper §IV-C, "Heap Management"). The package also
// implements the paper's extension for merging a child domain's subheap
// back into its parent on normal domain destruction.
//
// The layout follows the reference implementation (mattconte/tlsf):
// good-fit, O(1) malloc/free, a first-level index of power-of-two size
// classes and a second level splitting each class into 32 linear
// subdivisions. All allocator metadata — control block, block headers,
// free-list links, boundary tags — lives inside the managed (simulated)
// memory itself, so heap-metadata corruption by an overflowing domain is
// possible exactly as it is in the C library, and is confined to that
// domain's pool by the protection key.
package tlsf

import (
	"errors"
	"fmt"
	"math/bits"

	"sdrad/internal/mem"
)

// Tuning constants, matching the 64-bit reference implementation.
const (
	alignLog2 = 3
	align     = 1 << alignLog2 // all sizes and pointers 8-byte aligned

	slIndexLog2  = 5
	slIndexCount = 1 << slIndexLog2 // 32 second-level subdivisions

	flIndexMax   = 32 // largest block: 2^32 bytes
	flIndexShift = slIndexLog2 + alignLog2
	flIndexCount = flIndexMax - flIndexShift + 1

	smallBlockSize = 1 << flIndexShift // 256: below this, first level 0
)

// Block header flag bits stored in the low bits of the size field.
const (
	flagFree     = 1 << 0
	flagPrevFree = 1 << 1
	flagMask     = flagFree | flagPrevFree
)

// Header layout relative to a block header address H:
//
//	H-8: prev_phys boundary tag (valid only when the previous physical
//	     block is free; it occupies the last word of that block)
//	H+0: size | flags
//	H+8: user data ... or, while free: next-free pointer
//	H+16:                              prev-free pointer
const (
	headerOverhead = 8  // per-block overhead of a used block
	minBlockSize   = 24 // room for the free-list links + boundary tag
)

// maxAlloc is the largest request Alloc accepts.
const maxAlloc = 1 << 31

// Control-block layout relative to the control address:
//
//	+0:                      first-level bitmap (u64)
//	+8 + fl*8:               second-level bitmap for class fl (u64)
//	+slBase + (fl*32+sl)*8:  free-list head (block header address or 0)
const (
	flBitmapOff = 0
	slBitmapOff = 8
	slBase      = slBitmapOff + flIndexCount*8
	ctrlSize    = slBase + flIndexCount*slIndexCount*8
)

// Errors reported by the allocator.
var (
	ErrOOM        = errors.New("tlsf: out of memory")
	ErrTooLarge   = errors.New("tlsf: request exceeds maximum block size")
	ErrBadFree    = errors.New("tlsf: invalid free (not an allocated block)")
	ErrBadRegion  = errors.New("tlsf: region too small or misaligned")
	ErrCorrupt    = errors.New("tlsf: heap invariant violated")
	ErrMergedHeap = errors.New("tlsf: heap was merged into another heap")
)

// Region describes one contiguous span of managed memory.
type Region struct {
	Base mem.Addr
	Size uint64
}

// Heap is one TLSF allocator instance: a control block plus one or more
// managed regions. The Go-side struct holds only bookkeeping (control
// address and region list); all allocator state lives in simulated memory.
//
// A Heap is not internally synchronized: SDRaD gives every domain its own
// heap and a domain executes on one thread at a time. Shared data domains
// must be protected by their own lock, as in the paper's Memcached port.
type Heap struct {
	ctrl    mem.Addr
	regions []Region
	merged  bool

	// Allocation statistics (Go-side, observability only).
	allocs int64
	frees  int64

	// allocHook, when non-nil, may veto allocations; see SetAllocHook.
	allocHook func(size uint64) error
}

// SetAllocHook installs (or, with nil, removes) an allocation hook: it is
// consulted at the top of every Alloc and a non-nil return fails the
// allocation with that error, exactly as if the heap were exhausted. The
// chaos engine uses it to inject allocation failures at chosen points and
// verify that OOM paths leave the heap consistent. The hook runs with
// whatever synchronization the caller's Alloc runs under.
func (h *Heap) SetAllocHook(fn func(size uint64) error) { h.allocHook = fn }

// Init creates a heap whose control block and first region are carved from
// [base, base+size). base must be 8-byte aligned and size large enough for
// the control block plus one minimal block.
func Init(c *mem.CPU, base mem.Addr, size uint64) (*Heap, error) {
	if uint64(base)%align != 0 || size < ctrlSize+2*headerOverhead+minBlockSize {
		return nil, ErrBadRegion
	}
	h := &Heap{ctrl: base}
	// Zero the control block: empty bitmaps and lists.
	c.Memset(base, 0, ctrlSize)
	if err := h.AddRegion(c, base+ctrlSize, size-ctrlSize); err != nil {
		return nil, err
	}
	return h, nil
}

// AddRegion donates [base, base+size) to the heap as an additional pool.
func (h *Heap) AddRegion(c *mem.CPU, base mem.Addr, size uint64) error {
	if h.merged {
		return ErrMergedHeap
	}
	if uint64(base)%align != 0 {
		return ErrBadRegion
	}
	size &^= align - 1
	if size < 2*headerOverhead+minBlockSize {
		return ErrBadRegion
	}
	// Main block followed by a zero-size used sentinel that terminates
	// physical-block walks.
	main := base
	mainSize := size - 2*headerOverhead
	c.WriteU64(main, mainSize|flagFree)
	sentinel := main + headerOverhead + mem.Addr(mainSize)
	c.WriteU64(sentinel, 0|flagPrevFree)
	c.WriteAddr(sentinel-8, main) // boundary tag
	h.insert(c, main, mainSize)
	h.regions = append(h.regions, Region{Base: base, Size: size})
	return nil
}

// Regions returns the managed regions (copy).
func (h *Heap) Regions() []Region {
	out := make([]Region, len(h.regions))
	copy(out, h.regions)
	return out
}

// AllocCount and FreeCount report the number of successful operations.
func (h *Heap) AllocCount() int64 { return h.allocs }

// FreeCount reports the number of successful Free calls.
func (h *Heap) FreeCount() int64 { return h.frees }

// --- size-class mapping -------------------------------------------------

// fls returns the index of the highest set bit (floor log2).
func fls(v uint64) int { return 63 - bits.LeadingZeros64(v) }

// mappingInsert computes the (fl, sl) class a block of the given size
// belongs to when inserted into the free lists.
func mappingInsert(size uint64) (fl, sl int) {
	if size < smallBlockSize {
		return 0, int(size / (smallBlockSize / slIndexCount))
	}
	f := fls(size)
	sl = int((size >> (uint(f) - slIndexLog2)) & (slIndexCount - 1))
	fl = f - flIndexShift + 1
	return fl, sl
}

// mappingSearch rounds the request up so the found class is guaranteed to
// hold blocks large enough, then maps it.
func mappingSearch(size uint64) (fl, sl int) {
	if size >= smallBlockSize {
		size += (1 << (uint(fls(size)) - slIndexLog2)) - 1
	}
	return mappingInsert(size)
}

// --- control-block accessors ---------------------------------------------

func (h *Heap) flBitmap(c *mem.CPU) uint64 { return c.ReadU64(h.ctrl + flBitmapOff) }

func (h *Heap) setFLBitmap(c *mem.CPU, v uint64) { c.WriteU64(h.ctrl+flBitmapOff, v) }

func (h *Heap) slBitmap(c *mem.CPU, fl int) uint64 {
	return c.ReadU64(h.ctrl + slBitmapOff + mem.Addr(fl*8))
}

func (h *Heap) setSLBitmap(c *mem.CPU, fl int, v uint64) {
	c.WriteU64(h.ctrl+slBitmapOff+mem.Addr(fl*8), v)
}

func (h *Heap) headAddr(fl, sl int) mem.Addr {
	return h.ctrl + slBase + mem.Addr((fl*slIndexCount+sl)*8)
}

func (h *Heap) head(c *mem.CPU, fl, sl int) mem.Addr {
	return c.ReadAddr(h.headAddr(fl, sl))
}

func (h *Heap) setHead(c *mem.CPU, fl, sl int, b mem.Addr) {
	c.WriteAddr(h.headAddr(fl, sl), b)
}

// --- block accessors ------------------------------------------------------

func blockSize(c *mem.CPU, b mem.Addr) uint64 { return c.ReadU64(b) &^ flagMask }

func blockFlags(c *mem.CPU, b mem.Addr) uint64 { return c.ReadU64(b) & flagMask }

func setBlock(c *mem.CPU, b mem.Addr, size, flags uint64) {
	c.WriteU64(b, size|flags)
}

func isFree(c *mem.CPU, b mem.Addr) bool { return c.ReadU64(b)&flagFree != 0 }

func isPrevFree(c *mem.CPU, b mem.Addr) bool { return c.ReadU64(b)&flagPrevFree != 0 }

// nextBlock returns the header of the physically following block.
func nextBlock(c *mem.CPU, b mem.Addr) mem.Addr {
	return b + headerOverhead + mem.Addr(blockSize(c, b))
}

// prevPhys reads the boundary tag (valid only when isPrevFree).
func prevPhys(c *mem.CPU, b mem.Addr) mem.Addr { return c.ReadAddr(b - 8) }

func nextFree(c *mem.CPU, b mem.Addr) mem.Addr { return c.ReadAddr(b + 8) }

func prevFree(c *mem.CPU, b mem.Addr) mem.Addr { return c.ReadAddr(b + 16) }

func setNextFree(c *mem.CPU, b, v mem.Addr) { c.WriteAddr(b+8, v) }

func setPrevFree(c *mem.CPU, b, v mem.Addr) { c.WriteAddr(b+16, v) }

// --- free-list maintenance -------------------------------------------------

// insert links a free block of the given size into its class list and sets
// the bitmap bits.
func (h *Heap) insert(c *mem.CPU, b mem.Addr, size uint64) {
	fl, sl := mappingInsert(size)
	head := h.head(c, fl, sl)
	setNextFree(c, b, head)
	setPrevFree(c, b, 0)
	if head != 0 {
		setPrevFree(c, head, b)
	}
	h.setHead(c, fl, sl, b)
	h.setFLBitmap(c, h.flBitmap(c)|1<<uint(fl))
	h.setSLBitmap(c, fl, h.slBitmap(c, fl)|1<<uint(sl))
}

// remove unlinks a free block from its class list, clearing bitmap bits
// when the list empties.
func (h *Heap) remove(c *mem.CPU, b mem.Addr, size uint64) {
	fl, sl := mappingInsert(size)
	next := nextFree(c, b)
	prev := prevFree(c, b)
	if next != 0 {
		setPrevFree(c, next, prev)
	}
	if prev != 0 {
		setNextFree(c, prev, next)
	} else {
		h.setHead(c, fl, sl, next)
		if next == 0 {
			slm := h.slBitmap(c, fl) &^ (1 << uint(sl))
			h.setSLBitmap(c, fl, slm)
			if slm == 0 {
				h.setFLBitmap(c, h.flBitmap(c)&^(1<<uint(fl)))
			}
		}
	}
}

// searchSuitable finds a free block of at least the class (fl, sl),
// returning 0 when none exists.
func (h *Heap) searchSuitable(c *mem.CPU, fl, sl int) (b mem.Addr, ffl, fsl int) {
	slMap := h.slBitmap(c, fl) & (^uint64(0) << uint(sl))
	if slMap == 0 {
		flMap := h.flBitmap(c) & (^uint64(0) << uint(fl+1))
		if flMap == 0 {
			return 0, 0, 0
		}
		fl = bits.TrailingZeros64(flMap)
		slMap = h.slBitmap(c, fl)
	}
	sl = bits.TrailingZeros64(slMap)
	return h.head(c, fl, sl), fl, sl
}

// --- public allocation API --------------------------------------------------

// adjustSize rounds a request up to alignment and the minimum block size.
func adjustSize(size uint64) uint64 {
	if size < minBlockSize {
		size = minBlockSize
	}
	return (size + align - 1) &^ uint64(align-1)
}

// Alloc returns the address of a fresh block of at least size bytes.
func (h *Heap) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) {
	if h.merged {
		return 0, ErrMergedHeap
	}
	if h.allocHook != nil {
		if err := h.allocHook(size); err != nil {
			return 0, err
		}
	}
	if size == 0 {
		size = 1
	}
	if size > maxAlloc {
		return 0, ErrTooLarge
	}
	adjust := adjustSize(size)
	fl, sl := mappingSearch(adjust)
	b, _, _ := h.searchSuitable(c, fl, sl)
	if b == 0 {
		return 0, ErrOOM
	}
	bsize := blockSize(c, b)
	h.remove(c, b, bsize)

	// Split when the remainder can stand alone as a block.
	if bsize >= adjust+headerOverhead+minBlockSize {
		rem := b + headerOverhead + mem.Addr(adjust)
		remSize := bsize - adjust - headerOverhead
		setBlock(c, b, adjust, blockFlags(c, b))
		// The remainder follows a used block.
		setBlock(c, rem, remSize, flagFree)
		// Tell the block after the remainder about its new free neighbour.
		n := nextBlock(c, rem)
		setBlock(c, n, blockSize(c, n), blockFlags(c, n)|flagPrevFree)
		c.WriteAddr(n-8, rem)
		h.insert(c, rem, remSize)
		bsize = adjust
	} else {
		// Whole block used: clear the next block's prev-free flag.
		n := nextBlock(c, b)
		setBlock(c, n, blockSize(c, n), blockFlags(c, n)&^uint64(flagPrevFree))
	}
	// Mark used, preserving the prev-free flag.
	setBlock(c, b, bsize, blockFlags(c, b)&^uint64(flagFree))
	h.allocs++
	return b + headerOverhead, nil
}

// AllocZeroed is Alloc followed by clearing the block (calloc).
func (h *Heap) AllocZeroed(c *mem.CPU, size uint64) (mem.Addr, error) {
	p, err := h.Alloc(c, size)
	if err != nil {
		return 0, err
	}
	c.Memset(p, 0, int(adjustSize(size)))
	return p, nil
}

// UsableSize returns the usable size of an allocated block.
func (h *Heap) UsableSize(c *mem.CPU, ptr mem.Addr) uint64 {
	return blockSize(c, ptr-headerOverhead)
}

// Free releases a block previously returned by Alloc, coalescing with free
// physical neighbours.
func (h *Heap) Free(c *mem.CPU, ptr mem.Addr) error {
	if h.merged {
		return ErrMergedHeap
	}
	if ptr == 0 || uint64(ptr)%align != 0 || !h.contains(ptr) {
		return ErrBadFree
	}
	b := ptr - headerOverhead
	if isFree(c, b) {
		return ErrBadFree // double free
	}
	size := blockSize(c, b)

	// Coalesce with the previous physical block.
	if isPrevFree(c, b) {
		p := prevPhys(c, b)
		psize := blockSize(c, p)
		h.remove(c, p, psize)
		size += psize + headerOverhead
		b = p
	}
	// Coalesce with the next physical block.
	n := b + headerOverhead + mem.Addr(size)
	if isFree(c, n) {
		nsize := blockSize(c, n)
		h.remove(c, n, nsize)
		size += nsize + headerOverhead
	}
	setBlock(c, b, size, flagFree|blockFlags(c, b)&flagPrevFree)
	// Publish the boundary tag and prev-free flag to the next block.
	n = b + headerOverhead + mem.Addr(size)
	setBlock(c, n, blockSize(c, n), blockFlags(c, n)|flagPrevFree)
	c.WriteAddr(n-8, b)
	h.insert(c, b, size)
	h.frees++
	return nil
}

// contains reports whether ptr lies inside a managed region.
func (h *Heap) contains(ptr mem.Addr) bool {
	for _, r := range h.regions {
		if ptr >= r.Base && ptr < r.Base+mem.Addr(r.Size) {
			return true
		}
	}
	return false
}

// Merge adopts every region of child into h: free blocks of the child are
// inserted into h's free lists and live allocations remain valid, now
// owned by h. This implements the paper's subheap merge performed when a
// transient domain exits normally with the HEAP_MERGE option. The child
// heap becomes unusable.
//
// Merge must never be used after an abnormal domain exit — the paper
// mandates that such subheaps are discarded because their contents are
// considered corrupted.
func (h *Heap) Merge(c *mem.CPU, child *Heap) error {
	if h.merged {
		return ErrMergedHeap
	}
	if child.merged {
		return ErrMergedHeap
	}
	for _, r := range child.regions {
		b := r.Base
		end := r.Base + mem.Addr(r.Size) - headerOverhead // sentinel header
		for b < end {
			size := blockSize(c, b)
			if isFree(c, b) {
				h.insert(c, b, size)
			}
			b = b + headerOverhead + mem.Addr(size)
		}
		h.regions = append(h.regions, r)
	}
	h.allocs += child.allocs
	h.frees += child.frees
	child.merged = true
	child.regions = nil
	return nil
}

// BlockInfo describes one physical block during a Walk.
type BlockInfo struct {
	Header mem.Addr
	User   mem.Addr
	Size   uint64
	Free   bool
}

// Walk visits every physical block in every region in address order. The
// callback returning false stops the walk.
func (h *Heap) Walk(c *mem.CPU, fn func(BlockInfo) bool) {
	for _, r := range h.regions {
		b := r.Base
		end := r.Base + mem.Addr(r.Size) - headerOverhead
		for b < end {
			size := blockSize(c, b)
			if !fn(BlockInfo{Header: b, User: b + headerOverhead, Size: size, Free: isFree(c, b)}) {
				return
			}
			b = b + headerOverhead + mem.Addr(size)
		}
	}
}

// Usage returns the bytes currently allocated and free (excluding
// headers), plus the block counts.
func (h *Heap) Usage(c *mem.CPU) (usedBytes, freeBytes uint64, usedBlocks, freeBlocks int) {
	h.Walk(c, func(bi BlockInfo) bool {
		if bi.Free {
			freeBytes += bi.Size
			freeBlocks++
		} else {
			usedBytes += bi.Size
			usedBlocks++
		}
		return true
	})
	return
}

// Check validates the structural invariants of the heap:
//
//  1. every block size is aligned and at least the minimum,
//  2. physical adjacency is consistent (prev-free flags and boundary
//     tags match reality),
//  3. no two adjacent free blocks exist (coalescing is total),
//  4. bitmap bits reflect list occupancy and every listed block is free
//     and mapped to the right class.
//
// It returns an error wrapping ErrCorrupt describing the first violation.
func (h *Heap) Check(c *mem.CPU) error {
	if h.merged {
		return ErrMergedHeap
	}
	// Physical walk per region.
	for _, r := range h.regions {
		b := r.Base
		end := r.Base + mem.Addr(r.Size) - headerOverhead
		prevWasFree := false
		first := true
		var prevHeader mem.Addr
		for b < end {
			size := blockSize(c, b)
			if size%align != 0 || size < minBlockSize {
				return fmt.Errorf("%w: block 0x%x has bad size %d", ErrCorrupt, uint64(b), size)
			}
			if !first {
				if isPrevFree(c, b) != prevWasFree {
					return fmt.Errorf("%w: block 0x%x prev-free flag mismatch", ErrCorrupt, uint64(b))
				}
				if prevWasFree && prevPhys(c, b) != prevHeader {
					return fmt.Errorf("%w: block 0x%x boundary tag mismatch", ErrCorrupt, uint64(b))
				}
			}
			if isFree(c, b) && prevWasFree {
				return fmt.Errorf("%w: adjacent free blocks at 0x%x", ErrCorrupt, uint64(b))
			}
			prevWasFree = isFree(c, b)
			prevHeader = b
			first = false
			b = b + headerOverhead + mem.Addr(size)
		}
		if b != end {
			return fmt.Errorf("%w: region walk overran sentinel (0x%x != 0x%x)", ErrCorrupt, uint64(b), uint64(end))
		}
	}
	// Free lists vs bitmaps.
	for fl := 0; fl < flIndexCount; fl++ {
		slm := h.slBitmap(c, fl)
		if (h.flBitmap(c)&(1<<uint(fl)) != 0) != (slm != 0) {
			return fmt.Errorf("%w: fl bitmap bit %d inconsistent", ErrCorrupt, fl)
		}
		for sl := 0; sl < slIndexCount; sl++ {
			head := h.head(c, fl, sl)
			if (slm&(1<<uint(sl)) != 0) != (head != 0) {
				return fmt.Errorf("%w: sl bitmap bit (%d,%d) inconsistent", ErrCorrupt, fl, sl)
			}
			for b := head; b != 0; b = nextFree(c, b) {
				if !isFree(c, b) {
					return fmt.Errorf("%w: used block 0x%x on free list", ErrCorrupt, uint64(b))
				}
				bfl, bsl := mappingInsert(blockSize(c, b))
				if bfl != fl || bsl != sl {
					return fmt.Errorf("%w: block 0x%x in class (%d,%d), want (%d,%d)",
						ErrCorrupt, uint64(b), fl, sl, bfl, bsl)
				}
			}
		}
	}
	return nil
}

// Overhead returns the fixed per-heap metadata size (the control block).
func Overhead() uint64 { return ctrlSize }

// MinRegion returns the smallest usable size for Init.
func MinRegion() uint64 { return ctrlSize + 2*headerOverhead + minBlockSize }

// Realloc resizes an allocation. It grows in place when the physically
// next block is free and large enough, shrinks in place by splitting off
// a remainder, and otherwise allocates a new block, copies the payload,
// and frees the old one. Realloc(0, n) behaves like Alloc(n);
// Realloc(p, 0) frees p and returns 0.
func (h *Heap) Realloc(c *mem.CPU, ptr mem.Addr, size uint64) (mem.Addr, error) {
	if h.merged {
		return 0, ErrMergedHeap
	}
	if ptr == 0 {
		return h.Alloc(c, size)
	}
	if size == 0 {
		return 0, h.Free(c, ptr)
	}
	if size > maxAlloc {
		return 0, ErrTooLarge
	}
	if uint64(ptr)%align != 0 || !h.contains(ptr) {
		return 0, ErrBadFree
	}
	b := ptr - headerOverhead
	if isFree(c, b) {
		return 0, ErrBadFree
	}
	cur := blockSize(c, b)
	adjust := adjustSize(size)

	if adjust <= cur {
		h.shrinkInPlace(c, b, cur, adjust)
		return ptr, nil
	}

	// Try absorbing the next physical block.
	n := nextBlock(c, b)
	if isFree(c, n) {
		nsize := blockSize(c, n)
		if cur+headerOverhead+nsize >= adjust {
			h.remove(c, n, nsize)
			merged := cur + headerOverhead + nsize
			setBlock(c, b, merged, blockFlags(c, b))
			// The block after the absorbed neighbour now follows a used
			// block.
			nn := nextBlock(c, b)
			setBlock(c, nn, blockSize(c, nn), blockFlags(c, nn)&^uint64(flagPrevFree))
			h.shrinkInPlace(c, b, merged, adjust)
			return ptr, nil
		}
	}

	// Move: allocate, copy, free.
	np, err := h.Alloc(c, size)
	if err != nil {
		return 0, err
	}
	copyLen := cur
	if uint64(size) < copyLen {
		copyLen = uint64(size)
	}
	c.Copy(np, ptr, int(copyLen))
	if err := h.Free(c, ptr); err != nil {
		return 0, err
	}
	return np, nil
}

// shrinkInPlace reduces a used block to adjust bytes, releasing the
// remainder as a free block when it can stand alone.
func (h *Heap) shrinkInPlace(c *mem.CPU, b mem.Addr, cur, adjust uint64) {
	if cur < adjust+headerOverhead+minBlockSize {
		return // remainder too small to split off
	}
	setBlock(c, b, adjust, blockFlags(c, b))
	rem := b + headerOverhead + mem.Addr(adjust)
	remSize := cur - adjust - headerOverhead
	// Mark the remainder used (prev is the shrunk used block), then run
	// it through Free so it coalesces with a free successor normally.
	setBlock(c, rem, remSize, 0)
	n := nextBlock(c, rem)
	setBlock(c, n, blockSize(c, n), blockFlags(c, n)&^uint64(flagPrevFree))
	h.frees-- // compensate: this Free is bookkeeping, not a client free
	_ = h.Free(c, rem+headerOverhead)
}
