package tlsf

import (
	"math/rand"
	"testing"

	"sdrad/internal/mem"
)

// TestCheckAfterMergeUnderLoad merges a child subheap carrying a mix of
// live and freed blocks into its parent, then keeps allocating and
// freeing across the adopted regions with a full invariant Check after
// every mutation — the post-merge consistency the chaos engine's audits
// depend on.
func TestCheckAfterMergeUnderLoad(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	pb, err := as.MapAnon(64<<10, mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := as.MapAnon(32<<10, mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := Init(cpu, pb, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	child, err := Init(cpu, cb, 32<<10)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	var live []mem.Addr
	fill := func(p mem.Addr, b byte, n int) {
		for off := 0; off < n; off += 32 {
			cpu.WriteU8(p+mem.Addr(off), b)
		}
	}
	for i := 0; i < 12; i++ {
		size := 32 << rng.Intn(4)
		h := parent
		if i%2 == 0 {
			h = child
		}
		p, err := h.Alloc(cpu, uint64(size))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		fill(p, byte(0x40+i), size)
		live = append(live, p)
	}
	// Free a few child blocks so the merge adopts free-list entries too.
	for i := 0; i < 3; i++ {
		if err := child.Free(cpu, live[i*2]); err != nil {
			t.Fatalf("pre-merge free: %v", err)
		}
		live[i*2] = 0
	}

	if err := parent.Merge(cpu, child); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := parent.Check(cpu); err != nil {
		t.Fatalf("check after merge: %v", err)
	}

	// Alloc/free churn over the merged heap, re-checking the heap
	// invariants after every mutation.
	for i := 0; i < 32; i++ {
		if rng.Intn(2) == 0 {
			p, err := parent.Alloc(cpu, uint64(16<<rng.Intn(5)))
			if err != nil {
				t.Fatalf("post-merge alloc %d: %v", i, err)
			}
			live = append(live, p)
		} else {
			for j, p := range live {
				if p != 0 {
					if err := parent.Free(cpu, p); err != nil {
						t.Fatalf("post-merge free 0x%x: %v", uint64(p), err)
					}
					live[j] = 0
					break
				}
			}
		}
		if err := parent.Check(cpu); err != nil {
			t.Fatalf("check after churn step %d: %v", i, err)
		}
	}

	for _, p := range live {
		if p != 0 {
			if err := parent.Free(cpu, p); err != nil {
				t.Fatalf("drain free 0x%x: %v", uint64(p), err)
			}
		}
	}
	if err := parent.Check(cpu); err != nil {
		t.Fatalf("final check: %v", err)
	}
	if got := parent.AllocCount() - parent.FreeCount(); got != 0 {
		t.Errorf("alloc/free imbalance after drain: %d", got)
	}
}
