package cryptolib

import (
	"errors"
	"fmt"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/telemetry"
)

// Mode selects how data crosses between the application and the isolated
// crypto domain (§IV-A's three design choices, plus the unisolated
// native baseline measured by the paper's speed benchmark).
type Mode int

// Wrapper modes.
const (
	// ModeNative calls the engine directly with no isolation.
	ModeNative Mode = iota + 1
	// ModeCopyOut (design choice 1): the crypto domain reads the input
	// directly from its read-only parent; output is staged in the shared
	// data domain and copied out by the caller.
	ModeCopyOut
	// ModeCopyBoth (design choice 2): input and output both cross
	// through the shared data domain.
	ModeCopyBoth
	// ModeShared (design choice 3): the caller keeps its buffers in the
	// shared data domain; no copies at all.
	ModeShared
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeCopyOut:
		return "copy-out"
	case ModeCopyBoth:
		return "copy-both"
	case ModeShared:
		return "shared"
	default:
		return "unknown"
	}
}

// Domain indices used by the wrapper.
const (
	// OpenSSLUDI is the persistent inaccessible domain holding the
	// library context and key material.
	OpenSSLUDI = core.UDI(12)
	// OpenSSLDataUDI is the shared data domain for argument passing.
	OpenSSLDataUDI = core.UDI(13)
)

// ErrKeyIsolated marks attempts to use the wrapper in ways that would
// expose key material.
var ErrKeyIsolated = errors.New("cryptolib: context is isolated in the crypto domain")

// Crypto is the SDRaD-wrapped cipher: an engine whose context lives in a
// persistent nested domain that is inaccessible to its parent, with
// arguments passed per the selected mode. One Crypto belongs to one
// thread (domains are per-thread).
type Crypto struct {
	lib  *core.Library
	eng  *Engine
	mode Mode

	ctx mem.Addr // inside the crypto domain (ModeNative: root memory)

	dataBuf mem.Addr // staging buffer in the shared data domain
	dataCap int

	mOps *telemetry.Counter // nil without telemetry
}

// NewCrypto builds the wrapper on thread t: it creates the inaccessible
// crypto domain and the shared data domain, generates the key inside the
// domain, and initializes the cipher there. bufCap bounds the largest
// EncryptUpdate input.
//
// For ModeNative, lib may be nil and everything lives in plain memory.
func NewCrypto(t *proc.Thread, lib *core.Library, eng *Engine, mode Mode, key []byte, bufCap int) (*Crypto, error) {
	if len(key) != 32 {
		return nil, ErrBadKeyLen
	}
	cr := &Crypto{lib: lib, eng: eng, mode: mode, dataCap: bufCap}
	if lib != nil {
		if rec := lib.Telemetry(); rec != nil {
			cr.mOps = rec.Registry().CounterVec("sdrad_crypto_ops_total",
				"Crypto-wrapper operations, by kind.", "op").With("encrypt_update")
		}
	}
	c := t.CPU()

	if mode == ModeNative {
		if lib == nil {
			return nil, errors.New("cryptolib: native mode requires a library for root allocations")
		}
		ctx, err := lib.Malloc(t, core.RootUDI, CtxSize)
		if err != nil {
			return nil, err
		}
		keyBuf, err := lib.Malloc(t, core.RootUDI, 32)
		if err != nil {
			return nil, err
		}
		c.Write(keyBuf, key)
		if err := eng.EncryptInit(c, ctx, keyBuf, 32); err != nil {
			return nil, err
		}
		c.Memset(keyBuf, 0, 32)
		_ = lib.Free(t, core.RootUDI, keyBuf)
		cr.ctx = ctx
		return cr, nil
	}

	// Shared argument-passing data domain, accessible to the caller.
	if err := lib.InitDomain(t, OpenSSLDataUDI, core.AsData(), core.Accessible(),
		core.HeapSize(uint64(bufCap)*2+GCMTagSize*2+64*1024)); err != nil {
		return nil, err
	}
	buf, err := lib.Malloc(t, OpenSSLDataUDI, uint64(bufCap)*2+GCMTagSize*2)
	if err != nil {
		return nil, err
	}
	cr.dataBuf = buf

	// The crypto domain itself: NOT accessible to the parent — the whole
	// point is that callers can never read the context or key.
	if err := lib.InitDomain(t, OpenSSLUDI, core.HeapSize(256*1024)); err != nil {
		return nil, err
	}
	if err := lib.DProtect(t, OpenSSLUDI, OpenSSLDataUDI, mem.ProtRW); err != nil {
		return nil, err
	}

	// Stage the key through the data domain, then initialize the context
	// inside the crypto domain and scrub the staged copy.
	c.Write(cr.dataBuf, key)
	gerr := lib.Guard(t, OpenSSLUDI, func() error {
		if err := lib.Enter(t, OpenSSLUDI); err != nil {
			return err
		}
		ctx, err := lib.Malloc(t, OpenSSLUDI, CtxSize)
		if err != nil {
			return err
		}
		cr.ctx = ctx
		if err := eng.EncryptInit(c, ctx, cr.dataBuf, 32); err != nil {
			return err
		}
		return lib.Exit(t)
	})
	c.Memset(cr.dataBuf, 0, 32)
	if gerr != nil {
		return nil, fmt.Errorf("cryptolib: initializing crypto domain: %w", gerr)
	}
	return cr, nil
}

// DataBuf returns the shared data-domain staging buffer; ModeShared
// callers place their plaintext at DataBuf and read ciphertext at
// DataBuf+bufCap+GCMTagSize.
func (cr *Crypto) DataBuf() mem.Addr { return cr.dataBuf }

// SharedOut returns the ciphertext area for ModeShared.
func (cr *Crypto) SharedOut() mem.Addr {
	return cr.dataBuf + mem.Addr(cr.dataCap) + GCMTagSize
}

// EncryptUpdate is the wrapped EVP_EncryptUpdate of Listing 2: it moves
// the arguments across the isolation boundary per the configured mode,
// runs the real cipher inside the inaccessible domain, and moves the
// result back. in/out are the caller's buffers (root memory for modes 1
// and 2; inside the data domain for mode 3, in which case out may be 0
// to use SharedOut).
func (cr *Crypto) EncryptUpdate(t *proc.Thread, out, in mem.Addr, inl int) (int, error) {
	if cr.mOps != nil {
		cr.mOps.Inc()
	}
	if cr.mode == ModeNative {
		return cr.eng.EncryptUpdate(t.CPU(), cr.ctx, out, in, inl)
	}
	if inl > cr.dataCap {
		return 0, fmt.Errorf("cryptolib: input %d exceeds staging capacity %d", inl, cr.dataCap)
	}
	lib := cr.lib
	c := t.CPU()

	inArea := cr.dataBuf
	outArea := cr.dataBuf + mem.Addr(cr.dataCap) + GCMTagSize
	switch cr.mode {
	case ModeCopyBoth:
		// ② copy the input into the shared data domain.
		lib.Copy(t, inArea, in, inl)
	case ModeCopyOut:
		// ④ the domain will read the caller's buffer directly (the root
		// domain is readable from nested domains).
		inArea = in
	case ModeShared:
		inArea = in
		if out != 0 {
			outArea = out
		}
	}

	var outl int
	gerr := lib.Guard(t, OpenSSLUDI, func() error {
		if err := lib.Enter(t, OpenSSLUDI); err != nil {
			return err
		}
		var err error
		outl, err = cr.eng.EncryptUpdate(c, cr.ctx, outArea, inArea, inl)
		if eerr := lib.Exit(t); eerr != nil {
			return eerr
		}
		return err
	})
	if gerr != nil {
		return 0, gerr
	}
	// ⑤ copy the ciphertext back to the caller (modes 1 and 2).
	if cr.mode == ModeCopyOut || cr.mode == ModeCopyBoth {
		lib.Copy(t, out, outArea, outl)
	}
	return outl, nil
}

// Reinit re-creates the crypto domain after an abnormal exit destroyed it
// (the paper's NGINX+OpenSSL case study re-initializes the OpenSSL domain
// and continues). A fresh key must be provided — the old one is gone with
// the domain, exactly as the paper notes for lost TLS session keys.
func (cr *Crypto) Reinit(t *proc.Thread, key []byte) error {
	if cr.mode == ModeNative {
		return errors.New("cryptolib: native mode has no domain to reinitialize")
	}
	if len(key) != 32 {
		return ErrBadKeyLen
	}
	lib := cr.lib
	c := t.CPU()
	if err := lib.InitDomain(t, OpenSSLUDI, core.HeapSize(256*1024)); err != nil &&
		!errors.Is(err, core.ErrAlreadyInit) {
		return err
	}
	if err := lib.DProtect(t, OpenSSLUDI, OpenSSLDataUDI, mem.ProtRW); err != nil {
		return err
	}
	c.Write(cr.dataBuf, key)
	gerr := lib.Guard(t, OpenSSLUDI, func() error {
		if err := lib.Enter(t, OpenSSLUDI); err != nil {
			return err
		}
		ctx, err := lib.Malloc(t, OpenSSLUDI, CtxSize)
		if err != nil {
			return err
		}
		cr.ctx = ctx
		if err := cr.eng.EncryptInit(c, ctx, cr.dataBuf, 32); err != nil {
			return err
		}
		return lib.Exit(t)
	})
	c.Memset(cr.dataBuf, 0, 32)
	return gerr
}

// ContextAddr exposes the context address for the key-isolation tests.
func (cr *Crypto) ContextAddr() mem.Addr { return cr.ctx }
