package cryptolib

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/stack"
	"sdrad/internal/telemetry"
)

// This file implements the toy X.509 certificate checker carrying the
// CVE-2022-3786 analog. The real vulnerability: OpenSSL 3.0.6's punycode
// decoder, reached during X.509 name-constraint checking of an email
// address, can overflow a stack buffer with an arbitrary number of
// attacker-controlled bytes; the overflow is caught by stack canaries,
// crashing the application (denial of service). The paper isolates the
// certificate-verification API in a nested domain so the canary failure
// becomes an abnormal domain exit: the server closes the connection,
// re-initializes the crypto domain, and keeps serving.

// VerifyResult is the outcome of certificate verification.
type VerifyResult struct {
	CN    string
	Email string
	Valid bool
}

// Certificate parse errors (protocol level, not traps).
var (
	ErrBadCertificate = errors.New("cryptolib: malformed certificate")
)

// decodeBufSize is the fixed on-stack decode buffer for one label — the
// overflow target.
const decodeBufSize = 32

// FormatCertificate builds a toy certificate blob.
func FormatCertificate(cn, email string) []byte {
	return []byte("CN=" + cn + "\nEMAIL=" + email + "\n")
}

// MaliciousCertificate builds a certificate whose email domain contains a
// punycode label that decodes to far more than the on-stack buffer — the
// CVE trigger.
func MaliciousCertificate() []byte {
	// Each coded character expands to two output bytes; 64 coded chars
	// decode to 128 bytes into a 32-byte buffer.
	label := "xn--a-" + strings.Repeat("k", 64)
	return FormatCertificate("attacker", "root@"+label+".example.com")
}

// VerifyCertificate parses and checks the certificate at cert, using stk
// for the decoder's stack-allocated buffers. The punycode path contains
// the planted overflow: a label decoding to more than decodeBufSize
// bytes clobbers the frame canary, and the stack protector fires when
// the frame pops.
func VerifyCertificate(c *mem.CPU, stk *stack.Stack, cert mem.Addr, certLen int) (VerifyResult, error) {
	// The verifier's own frame: scratch locals that sit above the decode
	// buffers, as the real call stack would have (the overflow lands in
	// caller frames, not off the top of the stack).
	outer, err := stk.PushFrame(c, 256)
	if err != nil {
		return VerifyResult{}, fmt.Errorf("cryptolib: %w", err)
	}
	res, verr := verifyInner(c, stk, cert, certLen)
	if err := outer.Pop(c); err != nil {
		return res, fmt.Errorf("cryptolib: %w", err)
	}
	return res, verr
}

// verifyInner parses and checks the certificate fields.
func verifyInner(c *mem.CPU, stk *stack.Stack, cert mem.Addr, certLen int) (VerifyResult, error) {
	var res VerifyResult
	raw := c.ReadBytes(cert, certLen)
	for _, line := range bytes.Split(raw, []byte("\n")) {
		switch {
		case bytes.HasPrefix(line, []byte("CN=")):
			res.CN = string(line[3:])
		case bytes.HasPrefix(line, []byte("EMAIL=")):
			res.Email = string(line[6:])
		case len(line) == 0:
		default:
			return res, fmt.Errorf("%w: unknown field", ErrBadCertificate)
		}
	}
	if res.CN == "" || res.Email == "" {
		return res, fmt.Errorf("%w: missing CN or EMAIL", ErrBadCertificate)
	}
	at := strings.IndexByte(res.Email, '@')
	if at < 1 || at == len(res.Email)-1 {
		return res, fmt.Errorf("%w: invalid email", ErrBadCertificate)
	}
	domain := res.Email[at+1:]

	// Name-constraint checking: every IDN (xn--) label is decoded into a
	// fixed on-stack buffer (the CVE-2022-3786 code path).
	for _, label := range strings.Split(domain, ".") {
		if !strings.HasPrefix(label, "xn--") {
			continue
		}
		frame, err := stk.PushFrame(c, decodeBufSize)
		if err != nil {
			return res, fmt.Errorf("cryptolib: %w", err)
		}
		decodePunycodeLabel(c, []byte(label[4:]), frame.Locals())
		// The canary check below is __stack_chk_fail: an overflowing
		// decode panics with *stack.SmashError here.
		if err := frame.Pop(c); err != nil {
			return res, fmt.Errorf("cryptolib: %w", err)
		}
	}
	res.Valid = true
	return res, nil
}

// decodePunycodeLabel expands a simplified punycode label into dst: the
// ASCII prefix (before the last '-') is copied verbatim and every coded
// character expands to a two-byte sequence.
//
// BUG (intentional — the CVE-2022-3786 analog): the output length is
// never validated against the caller's buffer, so a long coded section
// writes past the fixed-size stack buffer.
func decodePunycodeLabel(c *mem.CPU, label []byte, dst mem.Addr) int {
	sep := bytes.LastIndexByte(label, '-')
	var ascii, coded []byte
	if sep >= 0 {
		ascii, coded = label[:sep], label[sep+1:]
	} else {
		coded = label
	}
	n := 0
	for _, b := range ascii {
		c.WriteU8(dst+mem.Addr(n), b)
		n++
	}
	for _, b := range coded {
		c.WriteU8(dst+mem.Addr(n), 0xC3)
		n++
		c.WriteU8(dst+mem.Addr(n), b)
		n++
	}
	return n
}

// X509UDI is the nested domain the isolated verifier runs in.
const X509UDI = core.UDI(11)

// Verifier runs certificate verification inside a nested SDRaD domain
// (§V-C: "we isolated the vulnerable X.509 certificate verification API
// of OpenSSL"). One Verifier belongs to one thread.
type Verifier struct {
	lib     *core.Library
	bufCap  int
	ready   bool
	certBuf mem.Addr
	rewinds int64
	mOps    *telemetry.Counter // nil without telemetry
}

// NewVerifier builds an isolated verifier able to check certificates up
// to bufCap bytes.
func NewVerifier(lib *core.Library, bufCap int) *Verifier {
	v := &Verifier{lib: lib, bufCap: bufCap}
	if rec := lib.Telemetry(); rec != nil {
		v.mOps = rec.Registry().CounterVec("sdrad_crypto_ops_total",
			"Crypto-wrapper operations, by kind.", "op").With("x509_verify")
	}
	return v
}

// Rewinds reports how many attacks the verifier absorbed.
func (v *Verifier) Rewinds() int64 { return v.rewinds }

// Verify checks the certificate inside the nested domain. A certificate
// that triggers the planted overflow produces an *core.AbnormalExit
// error (retrievable with errors.As); the domain is already discarded
// and will be re-created on the next call.
func (v *Verifier) Verify(t *proc.Thread, cert []byte) (VerifyResult, error) {
	if v.mOps != nil {
		v.mOps.Inc()
	}
	if len(cert) > v.bufCap {
		return VerifyResult{}, fmt.Errorf("%w: too large", ErrBadCertificate)
	}
	lib := v.lib
	var res VerifyResult
	var verr error
	gerr := lib.Guard(t, X509UDI, func() error {
		if !v.ready {
			buf, err := lib.Malloc(t, X509UDI, uint64(v.bufCap))
			if err != nil {
				return err
			}
			v.certBuf = buf
			v.ready = true
		}
		lib.WriteBytes(t, v.certBuf, cert) // copy the certificate in
		if err := lib.Enter(t, X509UDI); err != nil {
			return err
		}
		stk, err := lib.Stack(t, X509UDI)
		if err != nil {
			return err
		}
		res, verr = VerifyCertificate(t.CPU(), stk, v.certBuf, len(cert))
		return lib.Exit(t)
	}, core.Accessible())
	if gerr != nil {
		var abn *core.AbnormalExit
		if errors.As(gerr, &abn) {
			v.ready = false
			v.rewinds++
		}
		// Fail closed: every guard failure — including a re-init denied
		// by the resilience policy (core.ErrDomainQuarantined) — returns
		// a zero VerifyResult, so a quarantined verifier can never be
		// coerced into vouching for a certificate it did not check.
		return VerifyResult{}, gerr
	}
	return res, verr
}
