package cryptolib

import (
	"bytes"
	"errors"
	"testing"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
)

var testKey = bytes.Repeat([]byte{0x42}, 32)

func newLibProc(t testing.TB) (*proc.Process, *core.Library) {
	t.Helper()
	p := proc.NewProcess("crypto-test", proc.WithSeed(3))
	lib, err := core.Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, lib
}

func TestEngineRoundTrip(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		c := th.CPU()
		eng := NewEngine()
		ctx, _ := lib.Malloc(th, core.RootUDI, CtxSize)
		keyBuf, _ := lib.Malloc(th, core.RootUDI, 32)
		c.Write(keyBuf, testKey)
		if err := eng.EncryptInit(c, ctx, keyBuf, 32); err != nil {
			return err
		}
		pt := []byte("attack at dawn, bring snacks")
		in, _ := lib.Malloc(th, core.RootUDI, uint64(len(pt)))
		out, _ := lib.Malloc(th, core.RootUDI, uint64(len(pt)+GCMTagSize))
		dec, _ := lib.Malloc(th, core.RootUDI, uint64(len(pt)))
		c.Write(in, pt)

		n, err := eng.EncryptUpdate(c, ctx, out, in, len(pt))
		if err != nil {
			return err
		}
		if n != len(pt)+GCMTagSize {
			t.Errorf("ct len = %d", n)
		}
		// Ciphertext differs from plaintext.
		if bytes.Equal(c.ReadBytes(out, len(pt)), pt) {
			t.Error("ciphertext equals plaintext")
		}
		nonce := eng.LastNonce(c, ctx)
		m, err := eng.DecryptUpdate(c, ctx, dec, out, n, nonce)
		if err != nil {
			return err
		}
		if m != len(pt) || !bytes.Equal(c.ReadBytes(dec, m), pt) {
			t.Errorf("decrypt round trip failed: %q", c.ReadBytes(dec, m))
		}
		// Tampered ciphertext fails authentication.
		c.WriteU8(out, c.ReadU8(out)^1)
		if _, err := eng.DecryptUpdate(c, ctx, dec, out, n, nonce); !errors.Is(err, ErrAuth) {
			t.Errorf("tamper err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineErrors(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		c := th.CPU()
		eng := NewEngine()
		ctx, _ := lib.Malloc(th, core.RootUDI, CtxSize)
		keyBuf, _ := lib.Malloc(th, core.RootUDI, 32)
		if err := eng.EncryptInit(c, ctx, keyBuf, 16); !errors.Is(err, ErrBadKeyLen) {
			t.Errorf("short key err = %v", err)
		}
		// Uninitialized context.
		out, _ := lib.Malloc(th, core.RootUDI, 64)
		if _, err := eng.EncryptUpdate(c, ctx, out, keyBuf, 8); !errors.Is(err, ErrBadContext) {
			t.Errorf("bad ctx err = %v", err)
		}
		// Truncated ciphertext.
		if err := eng.EncryptInit(c, ctx, keyBuf, 32); err != nil {
			return err
		}
		if _, err := eng.DecryptUpdate(c, out, ctx, keyBuf, 4, 1); !errors.Is(err, ErrAuth) && !errors.Is(err, ErrBadContext) {
			t.Errorf("short ct err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineScheduleCacheRebuild(t *testing.T) {
	// A second engine (fresh cache) must still decrypt using only the
	// context in simulated memory — the key truly lives there.
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		c := th.CPU()
		eng1 := NewEngine()
		ctx, _ := lib.Malloc(th, core.RootUDI, CtxSize)
		keyBuf, _ := lib.Malloc(th, core.RootUDI, 32)
		c.Write(keyBuf, testKey)
		if err := eng1.EncryptInit(c, ctx, keyBuf, 32); err != nil {
			return err
		}
		pt := []byte("payload")
		in, _ := lib.Malloc(th, core.RootUDI, 16)
		out, _ := lib.Malloc(th, core.RootUDI, 64)
		dec, _ := lib.Malloc(th, core.RootUDI, 16)
		c.Write(in, pt)
		n, err := eng1.EncryptUpdate(c, ctx, out, in, len(pt))
		if err != nil {
			return err
		}
		eng2 := NewEngine()
		m, err := eng2.DecryptUpdate(c, ctx, dec, out, n, eng1.LastNonce(c, ctx))
		if err != nil || !bytes.Equal(c.ReadBytes(dec, m), pt) {
			t.Errorf("fresh engine decrypt: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWrapperModesRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeCopyOut, ModeCopyBoth, ModeShared} {
		t.Run(mode.String(), func(t *testing.T) {
			p, lib := newLibProc(t)
			err := p.Attach("main", func(th *proc.Thread) error {
				c := th.CPU()
				eng := NewEngine()
				cr, err := NewCrypto(th, lib, eng, mode, testKey, 4096)
				if err != nil {
					return err
				}
				pt := bytes.Repeat([]byte("abcd"), 256) // 1 KiB
				var in, out mem.Addr
				if mode == ModeShared {
					in = cr.DataBuf()
					out = cr.SharedOut()
				} else {
					in, _ = lib.Malloc(th, core.RootUDI, uint64(len(pt)))
					out, _ = lib.Malloc(th, core.RootUDI, uint64(len(pt))+GCMTagSize)
				}
				c.Write(in, pt)
				n, err := cr.EncryptUpdate(th, out, in, len(pt))
				if err != nil {
					return err
				}
				if n != len(pt)+GCMTagSize {
					t.Errorf("outl = %d", n)
				}
				ct := c.ReadBytes(out, len(pt))
				if bytes.Equal(ct, pt) {
					t.Error("no encryption happened")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKeyMaterialInaccessibleToParent(t *testing.T) {
	// The crypto domain is NOT accessible: the parent reading the
	// context is a PKU violation (and, from the root domain, fatal).
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		eng := NewEngine()
		cr, err := NewCrypto(th, lib, eng, ModeCopyBoth, testKey, 1024)
		if err != nil {
			return err
		}
		_ = th.CPU().ReadU64(cr.ContextAddr() + ctxOffKey) // must trap
		t.Error("unreachable: key read succeeded")
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash", err)
	}
	if crash.Info.Code != int(mem.CodePkuErr) {
		t.Errorf("code = %d, want SEGV_PKUERR", crash.Info.Code)
	}
}

func TestWrapperInputTooLarge(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		cr, err := NewCrypto(th, lib, NewEngine(), ModeCopyBoth, testKey, 128)
		if err != nil {
			return err
		}
		in, _ := lib.Malloc(th, core.RootUDI, 256)
		out, _ := lib.Malloc(th, core.RootUDI, 512)
		if _, err := cr.EncryptUpdate(th, out, in, 256); err == nil {
			t.Error("oversized input accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyGoodCertificates(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		v := NewVerifier(lib, 4096)
		for _, tc := range []struct {
			cn, email string
		}{
			{"alice", "alice@example.com"},
			{"bob", "bob@mail.example.org"},
			{"idn", "user@xn--c-eka.example"}, // short punycode: fits
		} {
			res, err := v.Verify(th, FormatCertificate(tc.cn, tc.email))
			if err != nil {
				t.Errorf("%s: %v", tc.email, err)
				continue
			}
			if !res.Valid || res.CN != tc.cn || res.Email != tc.email {
				t.Errorf("%s: result %+v", tc.email, res)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMalformedCertificates(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		v := NewVerifier(lib, 4096)
		for _, cert := range [][]byte{
			[]byte("JUNK=1\n"),
			FormatCertificate("", "a@b.c"),
			FormatCertificate("x", "no-at-sign"),
			FormatCertificate("x", "@nodomain"),
			FormatCertificate("x", "trailing@"),
		} {
			if _, err := v.Verify(th, cert); !errors.Is(err, ErrBadCertificate) {
				t.Errorf("%q: err = %v", cert, err)
			}
		}
		if _, err := v.Verify(th, make([]byte, 8192)); !errors.Is(err, ErrBadCertificate) {
			t.Errorf("oversized err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCVE2022_3786_IsolatedRewind(t *testing.T) {
	// The isolated verifier absorbs the stack overflow: the canary fires
	// inside the domain, the guard rewinds, and verification keeps
	// working afterwards.
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		v := NewVerifier(lib, 4096)
		_, err := v.Verify(th, MaliciousCertificate())
		var abn *core.AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("err = %v, want AbnormalExit", err)
		}
		if abn.Signal != sig.SIGABRT {
			t.Errorf("signal = %v, want SIGABRT (stack protector)", abn.Signal)
		}
		if v.Rewinds() != 1 {
			t.Errorf("rewinds = %d", v.Rewinds())
		}
		// Subsequent verifications work (domain re-created).
		res, err := v.Verify(th, FormatCertificate("carol", "carol@ok.example"))
		if err != nil || !res.Valid {
			t.Errorf("post-attack verify: %+v, %v", res, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Killed() {
		t.Error("process died despite isolation")
	}
}

func TestCVE2022_3786_UnisolatedCrashes(t *testing.T) {
	// Without isolation the canary failure aborts the process — the DoS
	// the CVE advisory describes.
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		cert := MaliciousCertificate()
		buf, err := lib.Malloc(th, core.RootUDI, uint64(len(cert)))
		if err != nil {
			return err
		}
		th.CPU().Write(buf, cert)
		// An app-managed stack in root memory (no domain).
		base, err := p.AddressSpace().MapAnon(64*1024, mem.ProtRW, lib.RootKey())
		if err != nil {
			return err
		}
		stk := stack.New(base, 64*1024, p.Rand64())
		_, verr := VerifyCertificate(th.CPU(), stk, buf, len(cert))
		return verr
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash", err)
	}
	if crash.Info.Signal != sig.SIGABRT {
		t.Errorf("signal = %v", crash.Info.Signal)
	}
	if !p.Killed() {
		t.Error("process survived")
	}
}

func TestRepeatedMaliciousCertificates(t *testing.T) {
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		v := NewVerifier(lib, 4096)
		for i := 0; i < 4; i++ {
			if _, err := v.Verify(th, MaliciousCertificate()); err == nil {
				t.Fatalf("attack %d not detected", i)
			}
			if res, err := v.Verify(th, FormatCertificate("u", "u@ok.io")); err != nil || !res.Valid {
				t.Fatalf("recovery %d failed: %v", i, err)
			}
		}
		if v.Rewinds() != 4 {
			t.Errorf("rewinds = %d", v.Rewinds())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCryptoReinitAfterDomainLoss(t *testing.T) {
	// Simulates the paper's combined scenario: the X.509 verifier and
	// the cipher live in different domains; after the verifier rewinds,
	// the cipher still works. Then the cipher domain itself is destroyed
	// and re-initialized with a fresh key (lost-session-keys scenario).
	p, lib := newLibProc(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		c := th.CPU()
		eng := NewEngine()
		cr, err := NewCrypto(th, lib, eng, ModeCopyBoth, testKey, 1024)
		if err != nil {
			return err
		}
		v := NewVerifier(lib, 4096)
		if _, err := v.Verify(th, MaliciousCertificate()); err == nil {
			t.Fatal("attack not detected")
		}
		// Cipher domain unaffected by the verifier's rewind.
		pt := []byte("still-works")
		in, _ := lib.Malloc(th, core.RootUDI, 32)
		out, _ := lib.Malloc(th, core.RootUDI, 64)
		c.Write(in, pt)
		if _, err := cr.EncryptUpdate(th, out, in, len(pt)); err != nil {
			t.Fatalf("cipher after verifier rewind: %v", err)
		}
		// Destroy and re-create the crypto domain with a new key.
		if err := lib.Destroy(th, OpenSSLUDI, core.NoHeapMerge); err != nil {
			return err
		}
		newKey := bytes.Repeat([]byte{0x17}, 32)
		if err := cr.Reinit(th, newKey); err != nil {
			return err
		}
		if _, err := cr.EncryptUpdate(th, out, in, len(pt)); err != nil {
			t.Fatalf("cipher after reinit: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeNative, ModeCopyOut, ModeCopyBoth, ModeShared, Mode(99)} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}
