// Package cryptolib is an OpenSSL-like cryptographic library used as the
// paper's third case study (§V-C). It provides an EVP-style cipher API
// whose contexts — including key material — live in simulated memory, so
// SDRaD can isolate them in a persistent inaccessible domain (protecting
// the library from its callers), and a toy X.509 certificate checker with
// the CVE-2022-3786 stack-overflow analog in its punycode decoder
// (protecting the application from the library).
//
// The wrapper types implement the paper's three argument-passing design
// choices for the inaccessible-domain configuration (Listing 2):
//
//  1. the OpenSSL domain reads input directly from its (read-only) parent
//     and copies output out through the shared data domain;
//  2. both input and output are copied through the shared data domain;
//  3. the caller places buffers in the shared data domain up front and no
//     copies are needed.
package cryptolib

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"sdrad/internal/mem"
)

// Context memory layout (all in simulated memory, inside whatever domain
// owns the context):
//
//	+0:  magic
//	+8:  key length (bytes)
//	+16: key material (up to 32 bytes)
//	+48: nonce counter
//	+56: generation (bumped on every re-init; invalidates schedule cache)
const (
	ctxOffMagic  = 0
	ctxOffKeyLen = 8
	ctxOffKey    = 16
	ctxOffNonce  = 48
	ctxOffGen    = 56
	// CtxSize is the allocation size of an EVP context.
	CtxSize = 64
)

const ctxMagic = 0x45565043_54580001 // "EVPCTX"

// GCMTagSize is the AEAD tag appended to every ciphertext.
const GCMTagSize = 16

// Engine errors.
var (
	ErrBadContext = errors.New("cryptolib: invalid or uninitialized context")
	ErrBadKeyLen  = errors.New("cryptolib: key must be 32 bytes (AES-256)")
	ErrAuth       = errors.New("cryptolib: message authentication failed")
)

// Engine is the cipher implementation ("libcrypto"). It caches expanded
// key schedules Go-side — the moral equivalent of code-segment state —
// keyed by context address and generation; all key bytes, nonces, and
// data buffers live in simulated memory and are read and written through
// the calling thread's CPU, subject to domain policy.
type Engine struct {
	mu    sync.Mutex
	cache map[mem.Addr]cachedAEAD
}

type cachedAEAD struct {
	gen  uint64
	aead cipher.AEAD
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{cache: make(map[mem.Addr]cachedAEAD)}
}

// EncryptInit initializes the EVP context at ctx with the 32-byte AES-256
// key stored at keyAddr. Both the context and the key are accessed
// through c, so calling this inside a domain keeps the key inside the
// domain.
func (e *Engine) EncryptInit(c *mem.CPU, ctx, keyAddr mem.Addr, keyLen int) error {
	if keyLen != 32 {
		return ErrBadKeyLen
	}
	key := c.ReadBytes(keyAddr, keyLen)
	c.WriteU64(ctx+ctxOffMagic, ctxMagic)
	c.WriteU64(ctx+ctxOffKeyLen, uint64(keyLen))
	c.Write(ctx+ctxOffKey, key)
	c.WriteU64(ctx+ctxOffNonce, 1)
	gen := c.ReadU64(ctx+ctxOffGen) + 1
	c.WriteU64(ctx+ctxOffGen, gen)

	block, err := aes.NewCipher(key)
	if err != nil {
		return fmt.Errorf("cryptolib: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return fmt.Errorf("cryptolib: %w", err)
	}
	e.mu.Lock()
	e.cache[ctx] = cachedAEAD{gen: gen, aead: aead}
	e.mu.Unlock()
	return nil
}

// aeadFor retrieves (or rebuilds) the AEAD for a context.
func (e *Engine) aeadFor(c *mem.CPU, ctx mem.Addr) (cipher.AEAD, error) {
	if c.ReadU64(ctx+ctxOffMagic) != ctxMagic {
		return nil, ErrBadContext
	}
	gen := c.ReadU64(ctx + ctxOffGen)
	e.mu.Lock()
	entry, ok := e.cache[ctx]
	e.mu.Unlock()
	if ok && entry.gen == gen {
		return entry.aead, nil
	}
	// Schedule cache miss: rebuild from the key material in the context.
	keyLen := int(c.ReadU64(ctx + ctxOffKeyLen))
	if keyLen != 32 {
		return nil, ErrBadContext
	}
	key := c.ReadBytes(ctx+ctxOffKey, keyLen)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptolib: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cryptolib: %w", err)
	}
	e.mu.Lock()
	e.cache[ctx] = cachedAEAD{gen: gen, aead: aead}
	e.mu.Unlock()
	return aead, nil
}

// nextNonce increments the context nonce counter and returns the 12-byte
// GCM nonce.
func nextNonce(c *mem.CPU, ctx mem.Addr) []byte {
	n := c.ReadU64(ctx + ctxOffNonce)
	c.WriteU64(ctx+ctxOffNonce, n+1)
	nonce := make([]byte, 12)
	binary.LittleEndian.PutUint64(nonce, n)
	return nonce
}

// rangesOverlap reports whether [a, a+alen) and [b, b+blen) intersect in
// the simulated address space.
func rangesOverlap(a mem.Addr, alen int, b mem.Addr, blen int) bool {
	return a < b+mem.Addr(blen) && b < a+mem.Addr(alen)
}

// readBlock returns the inl input bytes at in, in place when the block
// cannot alias the output or context state the call mutates before
// ciphering: a zero-copy page run when it sits inside one page, a span
// lease window when it crosses pages. It copies otherwise, and whenever
// the lease is refused — the checked copy faults exactly where the
// in-place read would have.
func readBlock(c *mem.CPU, ctx, in mem.Addr, inl int, out mem.Addr, outl int) []byte {
	if rangesOverlap(in, inl, out, outl) || rangesOverlap(in, inl, ctx, CtxSize) {
		return c.ReadBytes(in, inl)
	}
	if in.PageOff()+uint64(inl) <= mem.PageSize {
		return c.ReadRun(in, inl)
	}
	if b, ok := c.SpanLease(in, inl, mem.AccessRead).Bytes(in, inl); ok {
		return b
	}
	return c.ReadBytes(in, inl)
}

// EncryptUpdate encrypts inl bytes at in, writing ciphertext plus tag to
// out. It returns the output length (inl + GCMTagSize). Each update is
// sealed under a fresh counter nonce (the simulation treats every update
// as one AEAD record). When input and output each sit within one page the
// record is read and sealed directly in the simulated frames with no
// staging copies.
func (e *Engine) EncryptUpdate(c *mem.CPU, ctx, out, in mem.Addr, inl int) (int, error) {
	aead, err := e.aeadFor(c, ctx)
	if err != nil {
		return 0, err
	}
	outl := inl + GCMTagSize
	pt := readBlock(c, ctx, in, inl, out, outl)
	nonce := nextNonce(c, ctx)
	if !rangesOverlap(out, outl, in, inl) {
		// Seal straight into the simulated frames: a single-page record
		// through the write run, a multi-page record through a span-lease
		// window. A refused lease falls through to the staged copy, whose
		// checked write faults at the same first byte.
		if out.PageOff()+uint64(outl) <= mem.PageSize {
			dst := c.WriteRun(out, outl)
			aead.Seal(dst[:0], nonce, pt, nil)
			return outl, nil
		}
		if dst, ok := c.SpanLease(out, outl, mem.AccessWrite).Bytes(out, outl); ok {
			aead.Seal(dst[:0], nonce, pt, nil)
			return outl, nil
		}
	}
	ct := aead.Seal(nil, nonce, pt, nil)
	c.Write(out, ct)
	return len(ct), nil
}

// DecryptUpdate authenticates and decrypts inl bytes (ciphertext + tag)
// at in, written under the given record nonce value, into out. The
// ciphertext is read in place when its page run allows; the plaintext is
// only written to out after authentication succeeds, so a forged record
// leaves the output untouched.
func (e *Engine) DecryptUpdate(c *mem.CPU, ctx, out, in mem.Addr, inl int, nonceVal uint64) (int, error) {
	aead, err := e.aeadFor(c, ctx)
	if err != nil {
		return 0, err
	}
	if inl < GCMTagSize {
		return 0, ErrAuth
	}
	nonce := make([]byte, 12)
	binary.LittleEndian.PutUint64(nonce, nonceVal)
	ptl := inl - GCMTagSize
	ct := readBlock(c, ctx, in, inl, out, ptl)
	if ptl > 0 && !rangesOverlap(out, ptl, in, inl) {
		// Zero-copy open: GCM verifies the tag before writing any
		// plaintext, so opening directly into the leased output window
		// still leaves the output untouched on a forged record.
		if dst, ok := c.SpanLease(out, ptl, mem.AccessWrite).Bytes(out, ptl); ok {
			if _, err := aead.Open(dst[:0], nonce, ct, nil); err != nil {
				return 0, ErrAuth
			}
			return ptl, nil
		}
	}
	pt, err := aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return 0, ErrAuth
	}
	c.Write(out, pt)
	return len(pt), nil
}

// LastNonce returns the nonce value used by the most recent
// EncryptUpdate on ctx (for pairing with DecryptUpdate).
func (e *Engine) LastNonce(c *mem.CPU, ctx mem.Addr) uint64 {
	return c.ReadU64(ctx+ctxOffNonce) - 1
}
