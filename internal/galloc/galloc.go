// Package galloc is a simple first-fit free-list allocator over the
// simulated address space. It stands in for the glibc GNU allocator in the
// paper's "unmodified" baseline application variants: the evaluation
// compares vanilla builds (glibc malloc), TLSF builds, and SDRaD builds,
// and concludes TLSF costs <1% versus glibc. galloc is deliberately a
// different algorithm from internal/tlsf (address-ordered first fit with
// immediate coalescing, like a teaching dlmalloc) so that the
// TLSF-vs-default-allocator comparison is meaningful in this repository
// too.
package galloc

import (
	"errors"

	"sdrad/internal/mem"
)

// Block header layout at header address H:
//
//	H+0: size | flags (bit0 = free)
//	H+8: user data, or while free: next-free pointer
//
// Free blocks form a single address-ordered list; coalescing walks it.
const (
	headerOverhead = 8
	minBlock       = 16
	flagFree       = 1
)

// Errors reported by the allocator.
var (
	ErrOOM       = errors.New("galloc: out of memory")
	ErrBadFree   = errors.New("galloc: invalid free")
	ErrBadRegion = errors.New("galloc: region too small or misaligned")
)

// Heap is a first-fit allocator instance over one contiguous region.
type Heap struct {
	base mem.Addr
	size uint64

	// freeHead is the address of the first free block header (0 = none),
	// maintained in address order. Kept Go-side for simplicity; block
	// headers live in simulated memory.
	freeHead mem.Addr

	allocs int64
	frees  int64

	// allocHook, when non-nil, may veto allocations; see SetAllocHook.
	allocHook func(size uint64) error
}

// SetAllocHook installs (or, with nil, removes) an allocation hook
// consulted at the top of every Alloc; a non-nil return fails the
// allocation with that error. Used by the chaos engine to inject
// allocation failures into baseline (non-TLSF) builds.
func (h *Heap) SetAllocHook(fn func(size uint64) error) { h.allocHook = fn }

// Init creates a heap covering [base, base+size).
func Init(c *mem.CPU, base mem.Addr, size uint64) (*Heap, error) {
	if uint64(base)%8 != 0 || size < headerOverhead+minBlock {
		return nil, ErrBadRegion
	}
	size &^= 7
	h := &Heap{base: base, size: size, freeHead: base}
	c.WriteU64(base, (size-headerOverhead)|flagFree)
	c.WriteAddr(base+headerOverhead, 0) // next-free
	return h, nil
}

func blockSize(c *mem.CPU, b mem.Addr) uint64 { return c.ReadU64(b) &^ 7 }

func isFree(c *mem.CPU, b mem.Addr) bool { return c.ReadU64(b)&flagFree != 0 }

func nextFree(c *mem.CPU, b mem.Addr) mem.Addr { return c.ReadAddr(b + headerOverhead) }

// Alloc returns a block of at least size bytes using first fit.
func (h *Heap) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) {
	if h.allocHook != nil {
		if err := h.allocHook(size); err != nil {
			return 0, err
		}
	}
	if size == 0 {
		size = 1
	}
	size = (size + 7) &^ uint64(7)
	if size < minBlock {
		size = minBlock
	}
	var prev mem.Addr
	for b := h.freeHead; b != 0; b = nextFree(c, b) {
		bs := blockSize(c, b)
		if bs >= size {
			next := nextFree(c, b)
			if bs >= size+headerOverhead+minBlock {
				// Split: remainder stays on the free list in place.
				rem := b + headerOverhead + mem.Addr(size)
				c.WriteU64(rem, (bs-size-headerOverhead)|flagFree)
				c.WriteAddr(rem+headerOverhead, next)
				next = rem
				c.WriteU64(b, size)
			} else {
				c.WriteU64(b, bs)
			}
			if prev == 0 {
				h.freeHead = next
			} else {
				c.WriteAddr(prev+headerOverhead, next)
			}
			h.allocs++
			return b + headerOverhead, nil
		}
		prev = b
	}
	return 0, ErrOOM
}

// Free returns a block to the heap, coalescing with adjacent free blocks.
func (h *Heap) Free(c *mem.CPU, ptr mem.Addr) error {
	if ptr == 0 || uint64(ptr)%8 != 0 || ptr < h.base+headerOverhead ||
		ptr >= h.base+mem.Addr(h.size) {
		return ErrBadFree
	}
	b := ptr - headerOverhead
	if isFree(c, b) {
		return ErrBadFree
	}
	size := blockSize(c, b)

	// Insert in address order, coalescing with neighbours on the list.
	var prev mem.Addr
	next := h.freeHead
	for next != 0 && next < b {
		prev = next
		next = nextFree(c, next)
	}
	// Coalesce with next.
	if next != 0 && b+headerOverhead+mem.Addr(size) == next {
		size += headerOverhead + blockSize(c, next)
		next = nextFree(c, next)
	}
	// Coalesce with prev.
	if prev != 0 && prev+headerOverhead+mem.Addr(blockSize(c, prev)) == b {
		b = prev
		size += headerOverhead + blockSize(c, prev)
		// prev's predecessor keeps pointing at prev (== b now).
		c.WriteU64(b, size|flagFree)
		c.WriteAddr(b+headerOverhead, next)
		h.frees++
		return nil
	}
	c.WriteU64(b, size|flagFree)
	c.WriteAddr(b+headerOverhead, next)
	if prev == 0 {
		h.freeHead = b
	} else {
		c.WriteAddr(prev+headerOverhead, b)
	}
	h.frees++
	return nil
}

// FreeBytes returns the total free payload bytes (walks the free list).
func (h *Heap) FreeBytes(c *mem.CPU) uint64 {
	var total uint64
	for b := h.freeHead; b != 0; b = nextFree(c, b) {
		total += blockSize(c, b)
	}
	return total
}

// AllocCount reports successful allocations.
func (h *Heap) AllocCount() int64 { return h.allocs }

// FreeCount reports successful frees.
func (h *Heap) FreeCount() int64 { return h.frees }
