package galloc

import (
	"errors"
	"math/rand"
	"testing"

	"sdrad/internal/mem"
)

func newHeap(t testing.TB, size uint64) (*Heap, *mem.CPU) {
	t.Helper()
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, err := as.MapAnon(int(size), mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Init(cpu, base, size)
	if err != nil {
		t.Fatal(err)
	}
	return h, cpu
}

func TestInitErrors(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, _ := as.MapAnon(mem.PageSize, mem.ProtRW, 0)
	if _, err := Init(cpu, base+4, mem.PageSize); !errors.Is(err, ErrBadRegion) {
		t.Errorf("misaligned err = %v", err)
	}
	if _, err := Init(cpu, base, 8); !errors.Is(err, ErrBadRegion) {
		t.Errorf("tiny err = %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, err := h.Alloc(cpu, 100)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Memset(p, 0xEE, 100)
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	if h.AllocCount() != 1 || h.FreeCount() != 1 {
		t.Error("counters wrong")
	}
}

func TestBadFree(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, _ := h.Alloc(cpu, 32)
	if err := h.Free(cpu, 0); !errors.Is(err, ErrBadFree) {
		t.Error("Free(0) accepted")
	}
	if err := h.Free(cpu, p+3); !errors.Is(err, ErrBadFree) {
		t.Error("unaligned free accepted")
	}
	if err := h.Free(cpu, 0xFFFF0008); !errors.Is(err, ErrBadFree) {
		t.Error("foreign free accepted")
	}
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(cpu, p); !errors.Is(err, ErrBadFree) {
		t.Error("double free accepted")
	}
}

func TestCoalescingRestoresCapacity(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	free0 := h.FreeBytes(cpu)
	var ptrs []mem.Addr
	for i := 0; i < 20; i++ {
		p, err := h.Alloc(cpu, 512)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free in a scattered order to exercise all coalescing paths.
	order := []int{1, 3, 2, 0, 19, 17, 18, 5, 4, 6, 10, 8, 9, 7, 12, 14, 13, 11, 16, 15}
	for _, i := range order {
		if err := h.Free(cpu, ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.FreeBytes(cpu); got != free0 {
		t.Errorf("free bytes after full free = %d, want %d", got, free0)
	}
}

func TestOOM(t *testing.T) {
	h, cpu := newHeap(t, 4096)
	if _, err := h.Alloc(cpu, 1<<20); !errors.Is(err, ErrOOM) {
		t.Errorf("err = %v", err)
	}
}

func TestRandomizedUsage(t *testing.T) {
	h, cpu := newHeap(t, 256*1024)
	rng := rand.New(rand.NewSource(7))
	type alloc struct {
		p   mem.Addr
		n   int
		tag byte
	}
	var live []alloc
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := 1 + rng.Intn(1500)
			p, err := h.Alloc(cpu, uint64(n))
			if errors.Is(err, ErrOOM) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			tag := byte(i)
			cpu.Memset(p, tag, n)
			live = append(live, alloc{p, n, tag})
		} else {
			k := rng.Intn(len(live))
			a := live[k]
			if cpu.ReadU8(a.p) != a.tag || cpu.ReadU8(a.p+mem.Addr(a.n-1)) != a.tag {
				t.Fatalf("iter %d: corruption in live block", i)
			}
			if err := h.Free(cpu, a.p); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

func BenchmarkAllocFree(b *testing.B) {
	h, cpu := newHeap(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Alloc(cpu, 128)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(cpu, p); err != nil {
			b.Fatal(err)
		}
	}
}
