package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"sdrad/internal/cluster"
	"sdrad/internal/memcache"
	"sdrad/internal/proc"
)

// clusterBackend is one in-process hardened memcached behind a loopback
// listener, as the router sees a fleet member.
type clusterBackend struct {
	name string
	srv  *memcache.Server
	ln   net.Listener
}

func (b *clusterBackend) stop() {
	b.srv.Stop()
	_ = b.ln.Close()
}

// runCluster drives the consistent-hash router over three hardened
// backends through the fleet-level rewind-and-discard ladder: a bset
// attack through the router is absorbed by the backend it routes to; a
// backend killed mid-run is demoted after a bounded burst of degraded
// replies and its keys spill to ring successors; a backend whose
// telemetry reports a quarantined policy ladder is routed around without
// a single failed exchange; and both recoveries go through probation —
// the dead backend flaps and re-demotes with a doubled hold-off, the
// healed one readmits and returns to full health. Throughout, the
// client connection to the router must never break, and Stop must
// complete — no stuck connections.
func runCluster(cfg Config, r *Report) error {
	const (
		nBackends     = 3
		failThreshold = 2
		holdOff       = time.Second
		probationOKs  = 2
	)
	var backends []*clusterBackend
	var cfgBackends []cluster.Backend
	for i := 0; i < nBackends; i++ {
		name := fmt.Sprintf("b%d", i)
		srv, err := memcache.NewServer(memcache.Config{
			Variant:   memcache.VariantSDRaD,
			Workers:   1,
			HashPower: 10,
			Seed:      cfg.Seed + int64(i),
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Stop()
			return err
		}
		go func() { _ = srv.ServeListener(ln) }()
		b := &clusterBackend{name: name, srv: srv, ln: ln}
		defer b.stop()
		backends = append(backends, b)
		cfgBackends = append(cfgBackends, cluster.Backend{
			Name: name, Addr: ln.Addr().String(),
			MetricsURL: "stub://" + name,
		})
	}

	// Determinism: a manual clock drives the hold-off ladder, polls are
	// manual (PollInterval 0), and the telemetry fetch is a stub playing
	// each backend's policy state. Atomics, because the router reads the
	// clock from its serving goroutine.
	var clock atomic.Int64
	clock.Store(1)
	var quarantined [nBackends]atomic.Bool
	fetch := func(url string) ([]byte, error) {
		for i := 0; i < nBackends; i++ {
			if url == "stub://"+fmt.Sprintf("b%d", i) {
				if quarantined[i].Load() {
					return []byte(`{"sdrad_policy_state": {"4": 2}}`), nil
				}
				return []byte(`{"sdrad_policy_state": {"4": 0}}`), nil
			}
		}
		return nil, fmt.Errorf("unknown stub %q", url)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Backends: cfgBackends,
		Fetch:    fetch,
		Health: cluster.HealthConfig{
			FailThreshold: failThreshold,
			HoldOff:       holdOff,
			ProbationOKs:  probationOKs,
			Clock:         clock.Load,
		},
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Stop()
		return err
	}
	go func() { _ = rt.Serve(rln) }()

	c, err := cluster.Dial(rln.Addr().String(), 2*time.Second, 5*time.Second)
	if err != nil {
		rt.Stop()
		return err
	}
	defer func() { _ = c.Close() }()

	// do round-trips one request. The router's degraded answer is a
	// SERVER_ERROR line that keeps the connection open; any transport
	// error here means the client connection broke — the campaign's
	// hardest failure.
	do := func(label string, req []byte) []byte {
		rep, err := c.Do(req)
		if err != nil {
			r.failf("%s: client connection to the router broke: %v", label, err)
			return nil
		}
		return rep
	}
	// keyOwned returns the i-th key whose ring primary is backend b.
	keyOwned := func(b, i int) string {
		found := 0
		for j := 0; ; j++ {
			k := fmt.Sprintf("c%d", j)
			if rt.Ring().Primary(k) == b {
				if found == i {
					return k
				}
				found++
			}
		}
	}
	state := func(b int) cluster.HealthState { return rt.Health().State(b) }
	// auditBackend runs the library + shard invariant audit on one live
	// backend via a direct engine connection, between routed requests.
	auditors := make([]*auditor, nBackends)
	for i, b := range backends {
		auditors[i] = &auditor{r: r, lib: b.srv.Library()}
	}
	auditBackend := func(b int, label string) {
		conn := backends[b].srv.NewConn()
		if err := conn.Inspect(func(t *proc.Thread) error {
			auditors[b].audit(t, label)
			if err := backends[b].srv.Storage().AuditShards(t.CPU()); err != nil {
				r.failf("%s: b%d shard audit: %v", label, b, err)
			}
			return nil
		}); err != nil {
			r.failf("%s: b%d inspect: %v", label, b, err)
		}
	}

	// --- Phase 1: steady traffic spanning every backend. ---
	rng := rand.New(rand.NewSource(cfg.Seed))
	shadow := map[string][]byte{}
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("c%d", i)
	}
	for i := 0; i < cfg.Ops; i++ {
		key := keys[rng.Intn(len(keys))]
		label := fmt.Sprintf("op=%02d steady", i)
		switch rng.Intn(3) {
		case 0:
			val := []byte(fmt.Sprintf("v%d", i))
			rep := do(label, memcache.FormatSet(key, val, 0))
			if !bytes.HasPrefix(rep, []byte("STORED")) {
				r.failf("%s: set %s: %q", label, key, rep)
			} else {
				shadow[key] = val
			}
			r.event("%s set %s@%s %s", label, key, rt.Ring().Name(rt.Ring().Primary(key)), respClass(rep, false))
		case 1:
			rep := do(label, memcache.FormatGet(key))
			val, _, ok := memcache.ParseGetValue(rep)
			want, have := shadow[key]
			if ok != have || (ok && !bytes.Equal(val, want)) {
				r.failf("%s: get %s hit=%v, shadow says %v", label, key, ok, have)
			}
			r.event("%s get %s@%s hit=%v", label, key, rt.Ring().Name(rt.Ring().Primary(key)), ok)
		case 2:
			rep := do(label, memcache.FormatDelete(key))
			delete(shadow, key)
			r.event("%s delete %s@%s %s", label, key, rt.Ring().Name(rt.Ring().Primary(key)), respClass(rep, false))
		}
	}
	for b := 0; b < nBackends; b++ {
		if state(b) != cluster.HealthUp {
			r.failf("steady phase left backend b%d in state %v", b, state(b))
		}
	}

	// --- Phase 2: bset overflow attacks THROUGH the router. The routed
	// backend absorbs the rewind; the router answers the attacker with a
	// degraded reply and the very next request to that backend succeeds,
	// so one attack never demotes a healthy backend. ---
	for b := 0; b < nBackends; b++ {
		label := fmt.Sprintf("attack b%d", b)
		atkKey := keyOwned(b, 0)
		pre := backends[b].srv.Rewinds()
		r.Injected++
		rep := do(label, memcache.FormatBSet(atkKey, 1<<20, nil))
		if !bytes.HasPrefix(rep, []byte("SERVER_ERROR")) {
			r.failf("%s: attack reply %q, want a degraded SERVER_ERROR", label, rep)
		}
		delta := int(backends[b].srv.Rewinds() - pre)
		r.Absorbed += delta
		if delta != 1 {
			r.failf("%s: backend absorbed %d rewinds, want exactly 1", label, delta)
		}
		// Recovery probe: the backend serves again immediately, and the
		// success resets its failure streak.
		probe := do(label, memcache.FormatSet(atkKey, []byte("post-attack"), 0))
		if !bytes.HasPrefix(probe, []byte("STORED")) {
			r.failf("%s: backend did not serve after absorbing the attack: %q", label, probe)
		}
		if state(b) != cluster.HealthUp {
			r.failf("%s: one absorbed attack demoted the backend (state %v)", label, state(b))
		}
		auditBackend(b, label)
		r.event("%s key=%s rewinds=%d probe=%s state=%v", label, atkKey, delta, respClass(probe, false), state(b))
	}

	// --- Phase 3: kill backend b1 mid-run. Exactly failThreshold
	// degraded replies, then demotion; its keys spill to ring successors
	// and the survivors never miss a beat. ---
	victim := 1
	victimKey, survivorKey := keyOwned(victim, 0), keyOwned(0, 0)
	if rep := do("pre-kill", memcache.FormatSet(survivorKey, []byte("steadfast"), 0)); !bytes.HasPrefix(rep, []byte("STORED")) {
		r.failf("pre-kill: survivor set failed: %q", rep)
	}
	backends[victim].stop()
	r.event("kill b%d", victim)
	// The degraded burst is bounded, not exact: the dying backend may or
	// may not win the race to write one last SERVER_ERROR before its
	// connection drops, so the streak reaches the threshold in
	// failThreshold or failThreshold+1 client-visible errors. The
	// schedule records the bound, never the racy count.
	degraded := 0
	for i := 0; i < failThreshold+4; i++ {
		rep := do("post-kill", memcache.FormatSet(victimKey, []byte("spilled"), 0))
		if bytes.HasPrefix(rep, []byte("SERVER_ERROR")) {
			degraded++
			continue
		}
		if !bytes.HasPrefix(rep, []byte("STORED")) {
			r.failf("post-kill op %d: %q", i, rep)
		}
	}
	if degraded < 1 || degraded > failThreshold+1 {
		r.failf("post-kill: %d degraded replies, want 1..%d (bounded by the failure threshold)", degraded, failThreshold+1)
	}
	if state(victim) != cluster.HealthDemoted {
		r.failf("post-kill: dead backend state %v, want demoted", state(victim))
	}
	rep := do("post-kill", memcache.FormatGet(victimKey))
	if val, _, ok := memcache.ParseGetValue(rep); !ok || !bytes.Equal(val, []byte("spilled")) {
		r.failf("post-kill: spilled key not served by successor: %q", rep)
	}
	rep = do("post-kill", memcache.FormatGet(survivorKey))
	if val, _, ok := memcache.ParseGetValue(rep); !ok || !bytes.Equal(val, []byte("steadfast")) {
		r.failf("post-kill: survivor key damaged: %q", rep)
	}
	r.event("post-kill degraded<=%d state=%v spill=ok", failThreshold+1, state(victim))

	// --- Phase 4: quarantine backend b2 via its telemetry. The poll
	// demotes it before a single exchange fails: keys spill with zero
	// degraded replies. ---
	quarantine := 2
	quarantined[quarantine].Store(true)
	rt.PollOnce()
	if state(quarantine) != cluster.HealthDemoted {
		r.failf("quarantine: poll did not demote b%d (state %v)", quarantine, state(quarantine))
	}
	qKey := keyOwned(quarantine, 0)
	rep = do("quarantine", memcache.FormatSet(qKey, []byte("routed-around"), 0))
	if !bytes.HasPrefix(rep, []byte("STORED")) {
		r.failf("quarantine: spill not clean: %q", rep)
	}
	r.event("quarantine b%d state=%v spill=%s", quarantine, state(quarantine), respClass(rep, false))

	// --- Phase 5: hold-offs expire. The dead backend flaps — probation
	// readmit, one failed exchange, re-demotion with a doubled hold-off.
	// The healed backend readmits and earns its way back to Up. ---
	quarantined[quarantine].Store(false)
	clock.Add(int64(holdOff) + int64(100*time.Millisecond))
	rt.PollOnce() // healthy telemetry must not readmit by itself
	if state(quarantine) != cluster.HealthDemoted {
		r.failf("readmit: optimistic poll readmitted b%d early", quarantine)
	}
	rep = do("flap", memcache.FormatSet(victimKey, []byte("flap-probe"), 0))
	if !bytes.HasPrefix(rep, []byte("SERVER_ERROR")) {
		r.failf("flap: dead backend's probation exchange replied %q, want degraded", rep)
	}
	if state(victim) != cluster.HealthDemoted {
		r.failf("flap: dead backend state %v after probation strike, want re-demoted", state(victim))
	}
	rep = do("flap", memcache.FormatSet(victimKey, []byte("re-spilled"), 0))
	if !bytes.HasPrefix(rep, []byte("STORED")) {
		r.failf("flap: spill after re-demotion failed: %q", rep)
	}
	r.event("flap b%d re-demoted spill=%s", victim, respClass(rep, false))

	for i := 0; i < probationOKs; i++ {
		rep = do("readmit", memcache.FormatSet(qKey, []byte("welcome-back"), 0))
		if !bytes.HasPrefix(rep, []byte("STORED")) {
			r.failf("readmit op %d: %q", i, rep)
		}
	}
	if state(quarantine) != cluster.HealthUp {
		r.failf("readmit: b%d state %v after %d probation successes, want up", quarantine, state(quarantine), probationOKs)
	}
	r.event("readmit b%d state=%v", quarantine, state(quarantine))
	// And the key is back on its primary: read it from the backend
	// directly, bypassing the router.
	cb, err := cluster.Dial(backends[quarantine].ln.Addr().String(), 2*time.Second, 5*time.Second)
	if err != nil {
		r.failf("readmit: direct dial to b%d: %v", quarantine, err)
	} else {
		rep, err := cb.Do(memcache.FormatGet(qKey))
		if val, _, ok := memcache.ParseGetValue(rep); err != nil || !ok || !bytes.Equal(val, []byte("welcome-back")) {
			r.failf("readmit: primary b%d does not hold the post-readmit write: %q err=%v", quarantine, rep, err)
		}
		_ = cb.Close()
	}

	// --- Phase 6: shutdown. Stop must complete — a router with a stuck
	// client or backend connection hangs here, bounded by the watchdog. ---
	// The doubled hold-off for the flapped backend has not expired, so the
	// final ladder doubles as a determinism witness.
	r.event("final states b0=%v b1=%v b2=%v", state(0), state(1), state(2))
	stopped := make(chan struct{})
	go func() { rt.Stop(); close(stopped) }()
	select {
	case <-stopped:
		r.event("stop clean")
	case <-time.After(10 * time.Second):
		r.failf("router Stop did not complete: stuck connections")
	}
	for i, b := range backends {
		if i == victim {
			continue
		}
		if crashed, cause := b.srv.Crashed(); crashed {
			r.failf("backend b%d crashed during the campaign: %v", i, cause)
		}
		auditBackend(i, "final")
	}
	return nil
}
