package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"sdrad/internal/core"
	"sdrad/internal/memcache"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
)

// policyCampaignConfig is the tight ladder both phases use: 2 rewinds in
// the window trip backoff, 4 quarantine, 6 shedding; 10ms base hold-off
// capped at 40ms; 100ms cool-down. On the manual clock the walk is a
// pure function of the schedule below.
func policyCampaignConfig(clk *policy.ManualClock, shedThreshold int) policy.Config {
	return policy.Config{
		Window:              time.Second,
		BackoffThreshold:    2,
		QuarantineThreshold: 4,
		ShedThreshold:       shedThreshold,
		BackoffBase:         10 * time.Millisecond,
		BackoffMax:          40 * time.Millisecond,
		Cooldown:            100 * time.Millisecond,
		Clock:               clk.Now,
	}
}

// runPolicyCampaign walks the resilience-policy escalation ladder end to
// end, twice:
//
// Phase core: one victim domain is hammered with unmapped-write faults
// on a manual clock until the engine walks it rewind → backoff →
// quarantine → shedding, asserting every decision (state, action,
// window count, hold-off) along the way, that denied re-initializations
// surface as core.ErrDomainQuarantined WITHOUT producing rewinds or
// forensics reports, and that a sibling domain in the same library
// keeps serving at every rung.
//
// Phase memcache: the hardened server with an attached engine absorbs
// repeated binary-set overflows until the event domain is quarantined,
// proving the degraded path (gets answered as misses, mutations refused
// with SERVER_ERROR, no guard scope touched) and the cool-down readmit
// that restores full service — with the stored data intact, because the
// degraded path never touched the shared database.
func runPolicyCampaign(cfg Config, r *Report) error {
	if err := runPolicyCore(cfg, r); err != nil {
		return err
	}
	return runPolicyMemcache(cfg, r)
}

func runPolicyCore(cfg Config, r *Report) error {
	const (
		victimUDI  = core.UDI(4)
		siblingUDI = core.UDI(5)
	)
	clk := &policy.ManualClock{}
	eng := policy.New(policyCampaignConfig(clk, 6))
	p := proc.NewProcess("chaos-policy", proc.WithSeed(cfg.Seed))
	rec := cfg.recorder()
	lib, err := core.Setup(p, core.WithScrubOnDiscard(true), core.WithTelemetry(rec), core.WithPolicy(eng))
	if err != nil {
		return err
	}
	defer p.Shutdown()
	return p.Attach("chaos", func(t *proc.Thread) error {
		c := t.CPU()
		a := &auditor{r: r, lib: lib, rec: rec}

		// fault provokes one absorbed rewind of the victim and asserts
		// the policy decision stamped into its forensics report.
		fault := func(step int, wantState, wantAction string, wantWin int) {
			label := fmt.Sprintf("step=%02d fault", step)
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := a.forensicsPre()
			gerr := lib.Guard(t, victimUDI, func() error {
				if _, err := lib.Malloc(t, victimUDI, 64); err != nil {
					return err
				}
				if err := lib.Enter(t, victimUDI); err != nil {
					return err
				}
				c.WriteU8(0xDEAD0000, 1)
				return errNoFault
			}, core.Accessible())
			r.Injected++
			expectAbnormal(r, label, gerr, victimUDI, sig.SIGSEGV)
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensics(label, preForensics, 1)
			rep, ok := a.lastForensics(label)
			if !ok {
				return
			}
			if rep.PolicyState != wantState || rep.PolicyAction != wantAction || rep.PolicyWindowCount != wantWin {
				r.failf("%s: policy decision %s/%s/%d, want %s/%s/%d", label,
					rep.PolicyState, rep.PolicyAction, rep.PolicyWindowCount,
					wantState, wantAction, wantWin)
			}
			a.audit(t, label)
			r.event("%s state=%s action=%s window=%d", label, rep.PolicyState, rep.PolicyAction, rep.PolicyWindowCount)
		}

		// denied asserts the victim's re-initialization is refused — and
		// that the refusal is not a rewind: no rewind count, no
		// forensics report, no leftover domain state.
		denied := func(step int, wantState string, wantRetryNs int64) {
			label := fmt.Sprintf("step=%02d denied", step)
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := a.forensicsPre()
			gerr := lib.Guard(t, victimUDI, func() error { return lib.Exit(t) }, core.Accessible())
			var qe *core.QuarantineError
			if !errors.Is(gerr, core.ErrDomainQuarantined) || !errors.As(gerr, &qe) {
				r.failf("%s: guard returned %v, want ErrDomainQuarantined", label, gerr)
				return
			}
			if qe.State != wantState {
				r.failf("%s: denial state %s, want %s", label, qe.State, wantState)
			}
			if qe.RetryAfterNs != wantRetryNs {
				r.failf("%s: retry-after %dns, want %dns", label, qe.RetryAfterNs, wantRetryNs)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			a.audit(t, label)
			r.event("%s state=%s retry=%dns", label, qe.State, qe.RetryAfterNs)
		}

		// sibling proves an unrelated domain in the same library is
		// untouched by the victim's ladder position.
		sibling := func(step int) {
			label := fmt.Sprintf("step=%02d sibling", step)
			gerr := lib.Guard(t, siblingUDI, func() error {
				buf, err := lib.Malloc(t, siblingUDI, 64)
				if err != nil {
					return err
				}
				if err := lib.Enter(t, siblingUDI); err != nil {
					return err
				}
				c.WriteU64(buf, uint64(step))
				return lib.Exit(t)
			}, core.Accessible())
			if gerr != nil {
				r.failf("%s: sibling guard failed: %v", label, gerr)
				return
			}
			r.event("%s ok", label)
		}

		ms := func(n int) int64 { return int64(n) * int64(time.Millisecond) }

		fault(0, "healthy", "rewind", 1) // within budget
		sibling(1)
		fault(2, "backoff", "backoff", 2) // trips backoff, hold-off 10ms
		denied(3, "backoff", ms(10))
		sibling(4)
		clk.Advance(10 * time.Millisecond) // hold-off expires
		fault(5, "backoff", "backoff", 3)  // readmitted, faults again: step 2, 20ms
		denied(6, "backoff", ms(20))
		clk.Advance(20 * time.Millisecond)
		fault(7, "quarantined", "quarantine", 4) // crosses the quarantine threshold
		denied(8, "quarantined", ms(100))
		sibling(9)
		clk.Advance(50 * time.Millisecond) // half the cool-down: still denied
		denied(10, "quarantined", ms(50))
		clk.Advance(50 * time.Millisecond)        // cool-down over: probation readmit
		fault(11, "quarantined", "quarantine", 5) // probation violated: re-quarantined
		clk.Advance(100 * time.Millisecond)
		fault(12, "shedding", "shed", 6) // crosses the shed threshold
		denied(13, "shedding", 0)
		clk.Advance(time.Hour) // shedding is permanent
		denied(14, "shedding", 0)
		sibling(15)

		snaps := eng.Snapshot()
		if len(snaps) != 1 || snaps[0].UDI != int(victimUDI) {
			r.failf("engine snapshot: %+v, want exactly the victim domain", snaps)
		} else {
			s := snaps[0]
			if s.State != "shedding" || s.TotalRewinds != 6 {
				r.failf("final victim snapshot: %+v, want shedding after 6 rewinds", s)
			}
			r.event("final state=%s rewinds=%d escalations=%d", s.State, s.TotalRewinds, s.Escalations)
		}
		if cfg.PolicySink != nil {
			cfg.PolicySink("core", snaps)
		}
		return nil
	})
}

func runPolicyMemcache(cfg Config, r *Report) error {
	clk := &policy.ManualClock{}
	// Shedding disabled: this phase ends with the service recovered.
	eng := policy.New(policyCampaignConfig(clk, -1))
	rec := cfg.recorder()
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   1,
		HashPower: 10,
		Seed:      cfg.Seed,
		Telemetry: rec,
		Policy:    eng,
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	lib := s.Library()
	a := &auditor{r: r, lib: lib, rec: rec}
	conn := s.NewConn()
	do := func(req []byte) ([]byte, bool) {
		resp, closed, err := conn.Do(req)
		if err != nil {
			r.failf("mc request failed: %v", err)
			return nil, true
		}
		if closed {
			conn = s.NewConn()
		}
		return resp, closed
	}

	persistVal := []byte("survives-quarantine")
	if resp, _ := do(memcache.FormatSet("persist", persistVal, 7)); !bytes.HasPrefix(resp, []byte("STORED")) {
		return fmt.Errorf("chaos: persist set failed: %q", resp)
	}

	// expect sends a request and asserts the deterministic response class.
	expect := func(step int, what string, req []byte, wantClass string) {
		label := fmt.Sprintf("mc=%02d %s", step, what)
		resp, closed := do(req)
		class := respClass(resp, closed)
		if class != wantClass {
			r.failf("%s: response %q (closed=%v), want %s", label, resp, closed, wantClass)
		}
		r.event("%s %s", label, class)
	}

	// attack provokes one absorbed rewind of the event domain via the
	// binary-set overflow; the rewind closes the connection.
	attack := func(step int) {
		label := fmt.Sprintf("mc=%02d attack", step)
		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()
		_, closed := do(memcache.FormatBSet("atk", 1<<20, nil))
		if !closed {
			r.failf("%s: attack did not close the connection", label)
		}
		r.Injected++
		a.checkRewindDelta(label, preRewinds, 1)
		a.checkForensics(label, preForensics, 1)
		if err := conn.Inspect(func(t *proc.Thread) error {
			a.audit(t, label)
			return nil
		}); err != nil {
			r.failf("%s: inspect failed: %v", label, err)
		}
		rep, ok := a.lastForensics(label)
		if ok {
			r.event("%s state=%s action=%s window=%d", label, rep.PolicyState, rep.PolicyAction, rep.PolicyWindowCount)
		}
	}

	preDegraded := s.Degraded()
	attack(0) // healthy: absorbed, immediate re-init
	expect(1, "get", memcache.FormatGet("persist"), "VALUE")
	attack(2) // trips backoff (2 rewinds in window): hold-off 10ms
	// Degraded path while held off: gets are misses, mutations refused.
	expect(3, "get-degraded", memcache.FormatGet("persist"), "END")
	expect(4, "set-degraded", memcache.FormatSet("x", []byte("y"), 0), "SERVER_ERROR")
	clk.Advance(10 * time.Millisecond) // hold-off expires: full service back
	expect(5, "get-readmitted", memcache.FormatGet("persist"), "VALUE")
	attack(6) // window count 3: backoff again (20ms)
	clk.Advance(20 * time.Millisecond)
	attack(7) // window count 4: quarantined, 100ms cool-down
	expect(8, "get-quarantined", memcache.FormatGet("persist"), "END")
	expect(9, "delete-quarantined", memcache.FormatDelete("persist"), "SERVER_ERROR")
	clk.Advance(100 * time.Millisecond) // cool-down over: probation readmit
	expect(10, "get-recovered", memcache.FormatGet("persist"), "VALUE")
	if got := s.Degraded() - preDegraded; got != 4 {
		r.failf("degraded-path requests = %d, want 4", got)
	}

	// The degraded path must not have touched the store: the persisted
	// value survived quarantine bit-for-bit (checked via the VALUE
	// responses above), and the engine agrees on the final state.
	snaps := eng.Snapshot()
	if len(snaps) != 1 || snaps[0].State != "backoff" || snaps[0].TotalRewinds != 4 {
		r.failf("mc engine snapshot: %+v, want event domain on probation after 4 rewinds", snaps)
	} else {
		r.event("mc final state=%s rewinds=%d", snaps[0].State, snaps[0].TotalRewinds)
	}
	if cfg.PolicySink != nil {
		cfg.PolicySink("memcache", snaps)
	}
	return nil
}
