package chaos

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
)

// runSchedCampaign drives the self-tuning batch scheduler through its
// three contracts under a hand-advanced clock, so every controller
// decision is a deterministic function of the seed:
//
//  1. A fault inside a shard-split mixed batch rewinds exactly once,
//     produces exactly one forensics report agreeing with the MMU fault
//     log, closes only the trapped segment's connection, and leaves the
//     other segment's writes committed (the split is a real isolation
//     boundary, not just a throughput trick).
//  2. A fault burst walks the bound down multiplicatively — the
//     rewind-window ceiling must pin it to the floor while the window
//     is hot.
//  3. Once the window drains (manual-clock advance) a queued backlog
//     grows the bound back up: the collapse is a response to faults,
//     not a ratchet.
//
// Backlogs are staged behind a parked worker (the Inspect trick) and
// fit inside the event-queue buffer, so each drain round's composition
// — and with the frozen clock, each controller decision — is exact.
func runSchedCampaign(cfg Config, r *Report) error {
	const maxBatch = 16
	rec := cfg.recorder()
	clk := &policy.ManualClock{}
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   1,
		HashPower: 10,
		MaxBatch:  maxBatch,
		Seed:      cfg.Seed,
		Telemetry: rec,
		Sched:     &sched.Config{Clock: clk.Now},
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	lib := s.Library()
	as := s.Process().AddressSpace()
	a := &auditor{r: r, lib: lib, rec: rec}
	splits := rec.Registry().Counter("sdrad_sched_batch_splits_total",
		"Mixed batches split into per-shard guard scopes.")
	snap := func() sched.Snapshot { return s.SchedSnapshots()[0] }
	parkC := s.NewConn()
	auditSteady := func(label string) {
		if err := parkC.Inspect(func(t *proc.Thread) error {
			a.audit(t, label)
			if err := s.Storage().AuditShards(t.CPU()); err != nil {
				r.failf("%s: shard audit: %v", label, err)
			}
			return nil
		}); err != nil {
			r.failf("%s: inspect failed: %v", label, err)
		}
	}
	// park blocks the worker inside an inspect event and returns the
	// release function; everything queued before release is drained in
	// deterministic rounds afterwards.
	park := func() (release func() error, err error) {
		rel := make(chan struct{})
		started := make(chan struct{})
		parkErr := make(chan error, 1)
		go func() {
			parkErr <- parkC.Inspect(func(*proc.Thread) error {
				close(started)
				<-rel
				return nil
			})
		}()
		<-started
		return func() error { close(rel); return <-parkErr }, nil
	}
	// driveBacklog pre-queues n single-get events behind a parked
	// worker and releases them as one backlog. With every event queued
	// before the drain starts, the controller's growth walk is exact:
	// each round drains min(bound, remaining) events.
	driveBacklog := func(label string, n, wantBound, wantGrows int) error {
		release, err := park()
		if err != nil {
			return err
		}
		resC := make([]bool, n)
		errC := make([]error, n)
		var cg sync.WaitGroup
		for i := 0; i < n; i++ {
			cg.Add(1)
			go func(i int) {
				defer cg.Done()
				c := s.NewConn()
				_, resC[i], errC[i] = c.Do(memcache.FormatGet(fmt.Sprintf("rc-%02d", i)))
			}(i)
		}
		if err := waitDepth(s, n); err != nil {
			return err
		}
		preGrows := snap().Grows
		if err := release(); err != nil {
			return fmt.Errorf("chaos: sched park: %v", err)
		}
		cg.Wait()
		for i := 0; i < n; i++ {
			if errC[i] != nil || resC[i] {
				r.failf("%s: get %d: closed=%v err=%v", label, i, resC[i], errC[i])
			}
		}
		ss := snap()
		if ss.Bound != wantBound {
			r.failf("%s: bound=%d after %d-event backlog, want %d", label, ss.Bound, n, wantBound)
		}
		if d := ss.Grows - preGrows; d != int64(wantGrows) {
			r.failf("%s: %d additive grows, want %d", label, d, wantGrows)
		}
		r.event("%s backlog=%d bound=%d grows=+%d", label, n, ss.Bound, ss.Grows-preGrows)
		return nil
	}

	// Mine keys per storage shard: the split decision classifies an
	// event by its first key's shard.
	st := s.Storage()
	keysFor := func(shard, n int, prefix string) []string {
		keys := make([]string, 0, n)
		for i := 0; len(keys) < n && i < 100000; i++ {
			k := fmt.Sprintf("%s%04d", prefix, i)
			if st.ShardFor([]byte(k)) == shard {
				keys = append(keys, k)
			}
		}
		return keys
	}
	aKeys := keysFor(0, 4, "pa")
	bKeys := keysFor(1, 3, "pb")
	if len(aKeys) < 4 || len(bKeys) < 3 {
		return fmt.Errorf("chaos: sched: key mining failed (%d, %d)", len(aKeys), len(bKeys))
	}

	// ---- Phase 1: fault inside a shard-split mixed batch. Two
	// pipelined events — four shard-0 sets, then three shard-1 sets plus
	// the bset trap — are queued behind a parked worker so one drain
	// round takes them both. The scheduler splits the batch at the event
	// boundary; the trap must discard ONLY the second segment.
	release, err := park()
	if err != nil {
		return err
	}
	connA, connB := s.NewConn(), s.NewConn()
	var reqsA, reqsB [][]byte
	for _, k := range aKeys {
		reqsA = append(reqsA, memcache.FormatSet(k, []byte("seg-a-"+k), 0))
	}
	for _, k := range bKeys {
		reqsB = append(reqsB, memcache.FormatSet(k, []byte("seg-b-"+k), 0))
	}
	reqsB = append(reqsB, memcache.FormatBSet("atk", 1<<20, nil))

	var resA, resB []memcache.PipelineResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); resA = connA.DoPipeline(reqsA) }()
	if err := waitDepth(s, 1); err != nil {
		return err
	}
	wg.Add(1)
	go func() { defer wg.Done(); resB = connB.DoPipeline(reqsB) }()
	if err := waitDepth(s, 2); err != nil {
		return err
	}
	preRewinds := lib.Stats().Rewinds.Load()
	preForensics := a.forensicsPre()
	preSplits := splits.Value()
	if err := release(); err != nil {
		return fmt.Errorf("chaos: sched park: %v", err)
	}
	wg.Wait()
	r.Injected++

	label := "phase=split"
	if d := splits.Value() - preSplits; d != 1 {
		r.failf("%s: %d batch splits, want exactly 1", label, d)
	}
	a.checkRewindDelta(label, preRewinds, 1)
	a.checkForensicsFault(as, label, preForensics)
	for j, pr := range resA {
		if pr.Err != nil || pr.Closed || !bytes.HasPrefix(pr.Resp, []byte("STORED")) {
			r.failf("%s: segment-A item %d: resp=%q closed=%v err=%v", label, j, pr.Resp, pr.Closed, pr.Err)
		}
	}
	for j, pr := range resB {
		if !pr.Closed {
			r.failf("%s: segment-B item %d survived the segment rewind", label, j)
		}
	}
	ss := snap()
	if ss.WindowRewinds != 1 || ss.Bound != maxBatch/2 {
		r.failf("%s: controller bound=%d windowRewinds=%d, want bound=%d windowRewinds=1",
			label, ss.Bound, ss.WindowRewinds, maxBatch/2)
	}
	r.event("%s splits=1 bound=%d rewinds=%d", label, ss.Bound, ss.WindowRewinds)

	// The split protected segment A's writes; segment B's died with the
	// trap. Probe through a fresh connection. (Each probe is also an
	// idle round: by the end the bound has collapsed to its floor,
	// which the regrow below accounts for.)
	probe := s.NewConn()
	for _, k := range aKeys {
		resp, closed, err := probe.Do(memcache.FormatGet(k))
		if err != nil || closed {
			r.failf("%s: probe %s: closed=%v err=%v", label, k, closed, err)
			continue
		}
		if val, _, ok := memcache.ParseGetValue(resp); !ok || !bytes.Equal(val, []byte("seg-a-"+k)) {
			r.failf("%s: segment-A key %s = %q ok=%v, want committed value", label, k, val, ok)
		}
	}
	for _, k := range bKeys {
		resp, closed, err := probe.Do(memcache.FormatGet(k))
		if err != nil || closed {
			r.failf("%s: probe %s: closed=%v err=%v", label, k, closed, err)
			continue
		}
		if _, _, ok := memcache.ParseGetValue(resp); ok {
			r.failf("%s: segment-B key %s visible after batch rewind", label, k)
		}
	}
	auditSteady(label)

	// ---- Phase 2: fault burst. First regrow the bound out of the
	// idle-collapsed floor with a backlog (the rewind window is still
	// hot, so the window ceiling caps the walk: 1->2->3->4). Then three
	// traps in the same frozen window walk it down multiplicatively
	// (4->2->1) and pin it to the floor.
	if err := driveBacklog("phase=burst-regrow", 8, 4, 3); err != nil {
		return err
	}
	for k := 0; k < 3; k++ {
		label := fmt.Sprintf("phase=burst trap=%d", k)
		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()
		evil := s.NewConn()
		_, closed, err := evil.Do(memcache.FormatBSet("atk", 1<<20, nil))
		if err != nil || !closed {
			r.failf("%s: trap closed=%v err=%v", label, closed, err)
		}
		r.Injected++
		a.checkRewindDelta(label, preRewinds, 1)
		a.checkForensicsFault(as, label, preForensics)
		r.event("%s bound=%d rewinds=%d", label, snap().Bound, snap().WindowRewinds)
	}
	ss = snap()
	if ss.Bound != 1 || ss.WindowRewinds != 4 {
		r.failf("phase=burst: controller bound=%d windowRewinds=%d, want bound=1 windowRewinds=4",
			ss.Bound, ss.WindowRewinds)
	}
	auditSteady("phase=burst")

	// ---- Phase 3: recovery. Advance the manual clock past the rewind
	// window, then queue another backlog: with the window cold the
	// controller must grow the bound back out of the floor
	// (1->2->3->4->5 across the 12-event drain).
	clk.Advance(2 * time.Second)
	if err := driveBacklog("phase=recover", 12, 5, 4); err != nil {
		return err
	}
	ss = snap()
	if ss.WindowRewinds != 0 {
		r.failf("phase=recover: rewind window still holds %d entries after 2s advance", ss.WindowRewinds)
	}
	auditSteady("phase=recover")

	if crashed, cause := s.Crashed(); crashed {
		return fmt.Errorf("chaos: server process died: %v", cause)
	}
	r.event("final rewinds=%d bound=%d", lib.Stats().Rewinds.Load(), snap().Bound)
	return nil
}

// waitDepth polls worker 0's queue until it holds want events.
func waitDepth(s *memcache.Server, want int) error {
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth(0) < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: sched: queue depth %d never reached %d", s.QueueDepth(0), want)
		}
		time.Sleep(10 * time.Microsecond)
	}
	return nil
}
