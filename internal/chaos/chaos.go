// Package chaos is a deterministic fault-injection engine for the SDRaD
// simulation. A campaign drives one workload (the core library directly,
// or the memcache/httpd/cryptolib substrates) from a seeded RNG, injects
// faults — PKU violations from nested domains, stack-canary corruption,
// out-of-bounds and unmapped accesses, allocator OOM, malformed protocol
// bytes — and, after every rewind the monitor absorbs, audits the
// invariants the monitor relies on (core.Library.Audit plus engine-side
// checks: residual mappings, mapped-bytes stability, rewind accounting,
// fault-log correlation).
//
// "Unlimited Lives" (Gülmez et al.) motivates the design: rewind-based
// recovery fails subtly, by leaving state inconsistent after a rollback,
// not loudly. The engine therefore treats "the process survived" as the
// weakest of its checks and re-derives the monitor's bookkeeping after
// every absorbed fault.
//
// Everything is reproducible from the seed: the schedule — the ordered
// list of decisions and outcomes a campaign records — hashes to the same
// value on every run with the same seed, and diverging hashes pinpoint
// the first nondeterministic decision.
package chaos

import (
	"fmt"
	"sort"

	"sdrad/internal/policy"
	"sdrad/internal/telemetry"
)

// Config parameterizes one campaign run.
type Config struct {
	// Seed drives every random decision; the same seed reproduces the
	// identical fault schedule.
	Seed int64
	// Ops is the number of operations per campaign (default 32).
	Ops int
	// Logf, when non-nil, receives progress lines (the -v output of
	// cmd/sdrad-chaos).
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, is attached to every campaign's library so
	// one recorder accumulates the flight record and forensics reports
	// across campaigns (cmd/sdrad-chaos's -flight-dump). When nil each
	// campaign builds a private recorder; either way the campaigns assert
	// that every absorbed rewind leaves exactly one forensics report whose
	// si_code matches the injected fault.
	Telemetry *telemetry.Recorder
	// PolicySink, when non-nil, receives the resilience-policy engine's
	// per-UDI state snapshot at the end of each phase of the policy
	// campaign (cmd/sdrad-chaos's -policy-dump).
	PolicySink func(phase string, snaps []policy.DomainSnapshot)
}

// recorder returns the campaign's telemetry recorder, building a private
// one when the caller did not share one.
func (c *Config) recorder() *telemetry.Recorder {
	if c.Telemetry != nil {
		return c.Telemetry
	}
	return telemetry.New(telemetry.Options{})
}

func (c *Config) setDefaults() {
	if c.Ops <= 0 {
		c.Ops = 32
	}
}

// Report is the outcome of one campaign.
type Report struct {
	Campaign string
	Seed     int64
	Ops      int
	// Injected counts the faults the campaign provoked or injected that
	// the monitor had to absorb; Absorbed counts the rewinds observed.
	// The two must match (each absorbed exactly once).
	Injected int
	Absorbed int
	// Audits counts invariant audits run; every one must pass.
	Audits int
	// Schedule is the ordered record of decisions and outcomes; its hash
	// is the reproducibility witness.
	Schedule []string
	// Failures lists violated expectations; empty means the campaign
	// passed.
	Failures []string

	logf func(format string, args ...any)
}

// Ok reports whether the campaign met every expectation.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// event appends a schedule line. Lines must be deterministic functions of
// the seed: they feed ScheduleHash.
func (r *Report) event(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.Schedule = append(r.Schedule, line)
	if r.logf != nil {
		r.logf("  %s", line)
	}
}

// failf records a violated expectation.
func (r *Report) failf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.Failures = append(r.Failures, line)
	if r.logf != nil {
		r.logf("  FAIL: %s", line)
	}
}

// ScheduleHash is the FNV-1a hash of the schedule, the value two runs of
// the same (campaign, seed, ops) must agree on.
func (r *Report) ScheduleHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, line := range r.Schedule {
		for i := 0; i < len(line); i++ {
			h ^= uint64(line[i])
			h *= prime64
		}
		h ^= '\n'
		h *= prime64
	}
	return h
}

// Summary is a one-line result for logs.
func (r *Report) Summary() string {
	status := "PASS"
	if !r.Ok() {
		status = fmt.Sprintf("FAIL (%d)", len(r.Failures))
	}
	return fmt.Sprintf("%-10s seed=%d ops=%d injected=%d absorbed=%d audits=%d schedule=%016x %s",
		r.Campaign, r.Seed, r.Ops, r.Injected, r.Absorbed, r.Audits, r.ScheduleHash(), status)
}

// Campaign is one registered fault-injection scenario.
type Campaign struct {
	// Name selects the campaign on the command line.
	Name string
	// Desc is a one-line description for -list.
	Desc string
	run  func(cfg Config, r *Report) error
}

// campaigns is the registry, in fixed execution order.
var campaigns = []Campaign{
	{Name: "pku", Desc: "PKU access violations from nested domains (monitor, root, ungranted data domain, injected)", run: runPKU},
	{Name: "canary", Desc: "stack-canary corruption detected on frame pop and domain exit", run: runCanary},
	{Name: "oob", Desc: "out-of-bounds and unmapped accesses from nested domains", run: runOOB},
	{Name: "alloc", Desc: "allocation-failure injection in the tlsf and galloc allocators", run: runAlloc},
	{Name: "lease", Desc: "span-lease check elision: faults under leased paths keep exact si_code and byte; rewind revokes windows", run: runLease},
	{Name: "memcache", Desc: "memcached workload: bset overflow, mutated protocol bytes, injected PKU faults and OOM", run: runMemcache},
	{Name: "batch", Desc: "pipelined memcached batches: bset overflow mid-batch, whole-batch discard, shard invariant audits", run: runBatch},
	{Name: "sched", Desc: "self-tuning batch scheduler: fault in a shard-split batch discards one segment with one forensics report, a burst pins the bound to the floor, a drained window lets backlog regrow it", run: runSchedCampaign},
	{Name: "httpd", Desc: "httpd workload: URI traversal, malicious client certs, mutated requests, injected PKU faults", run: runHTTPD},
	{Name: "crypto", Desc: "cryptolib wrappers: injected faults inside EncryptUpdate, malicious certificate verification", run: runCrypto},
	{Name: "policy", Desc: "resilience-policy ladder: hammer one UDI through backoff/quarantine/shed while siblings keep serving, then the memcached degraded path", run: runPolicyCampaign},
	{Name: "cluster", Desc: "consistent-hash router over three backends: bset attack absorbed in place, a killed backend demotes after a bounded degraded burst and spills, a quarantined backend is routed around and readmits through probation", run: runCluster},
	{Name: "route", Desc: "load-aware placement and cross-worker stealing: calm-worker placement after a trap, boundary-aligned steals serve a parked victim's backlog, a fault in a stolen segment discards only that segment, and a floor-pinned controller escalates the event domain into policy backoff", run: runRouteCampaign},
}

// Campaigns lists the registered campaigns.
func Campaigns() []Campaign {
	out := make([]Campaign, len(campaigns))
	copy(out, campaigns)
	return out
}

// Run executes one campaign by name.
func Run(name string, cfg Config) (*Report, error) {
	for _, c := range campaigns {
		if c.Name == name {
			return runOne(c, cfg), nil
		}
	}
	return nil, fmt.Errorf("chaos: unknown campaign %q", name)
}

// RunSelected executes the named campaigns (all when names is empty) in
// registry order and returns their reports.
func RunSelected(names []string, cfg Config) ([]*Report, error) {
	selected := campaigns
	if len(names) > 0 {
		byName := map[string]Campaign{}
		for _, c := range campaigns {
			byName[c.Name] = c
		}
		order := map[string]int{}
		for i, c := range campaigns {
			order[c.Name] = i
		}
		selected = nil
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("chaos: unknown campaign %q", n)
			}
			selected = append(selected, c)
		}
		sort.SliceStable(selected, func(i, j int) bool {
			return order[selected[i].Name] < order[selected[j].Name]
		})
	}
	var reports []*Report
	for _, c := range selected {
		reports = append(reports, runOne(c, cfg))
	}
	return reports, nil
}

func runOne(c Campaign, cfg Config) *Report {
	cfg.setDefaults()
	r := &Report{Campaign: c.Name, Seed: cfg.Seed, Ops: cfg.Ops, logf: cfg.Logf}
	if cfg.Logf != nil {
		cfg.Logf("campaign %s: seed=%d ops=%d", c.Name, cfg.Seed, cfg.Ops)
	}
	if err := c.run(cfg, r); err != nil {
		r.failf("campaign error: %v", err)
	}
	if r.Injected != r.Absorbed {
		r.failf("rewind accounting: injected %d faults but observed %d rewinds", r.Injected, r.Absorbed)
	}
	return r
}
