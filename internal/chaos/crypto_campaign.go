package chaos

import (
	"errors"
	"fmt"

	"sdrad/internal/core"
	"sdrad/internal/cryptolib"
	"sdrad/internal/mem"
	"sdrad/internal/sig"
)

// runCrypto attacks the isolated OpenSSL-style wrappers: one-shot faults
// injected inside EncryptUpdate's crypto domain (absorbed, then the
// wrapper is re-initialized, as the paper's §V-B recovery), and malicious
// certificates absorbed by the X.509 verifier domain. Benign operations
// between attacks prove the wrappers stay functional.
func runCrypto(cfg Config, r *Report) error {
	return runCoreCampaign(cfg, r, func(env *coreEnv) error {
		t, lib, c := env.t, env.lib, env.t.CPU()

		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(0xA0 + i)
		}
		cr, err := cryptolib.NewCrypto(t, lib, cryptolib.NewEngine(), cryptolib.ModeCopyBoth, key, 1024)
		if err != nil {
			return err
		}
		v := cryptolib.NewVerifier(lib, 4096)

		in, err := lib.Malloc(t, core.RootUDI, 1024)
		if err != nil {
			return err
		}
		out, err := lib.Malloc(t, core.RootUDI, 1024+cryptolib.GCMTagSize)
		if err != nil {
			return err
		}

		encrypt := func(label string, n int, wantOK bool) {
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = byte(env.rng.Intn(256))
			}
			c.Write(in, payload)
			outl, err := cr.EncryptUpdate(t, out, in, n)
			if wantOK {
				if err != nil {
					r.failf("%s: encrypt failed: %v", label, err)
				} else if outl != n+cryptolib.GCMTagSize {
					r.failf("%s: ciphertext length %d, want %d", label, outl, n+cryptolib.GCMTagSize)
				}
			}
		}

		vectors := []string{"encrypt", "inject-crypto", "bad-cert", "good-cert"}
		for i := 0; i < cfg.Ops; i++ {
			vector := vectors[env.rng.Intn(len(vectors))]
			label := fmt.Sprintf("op=%02d %s", i, vector)
			n := 16 + env.rng.Intn(240)
			preRewinds := lib.Stats().Rewinds.Load()
			preSeq := env.as.FaultSeq()
			preForensics := env.a.forensicsPre()

			switch vector {
			case "encrypt":
				encrypt(label, n, true)
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				r.event("%s len=%d ok", label, n)
			case "inject-crypto":
				// The injector fires inside the crypto domain mid-update;
				// the wrapper's guard absorbs it and the context domain is
				// discarded, so the wrapper must be re-initialized.
				// EncryptUpdate makes seven gated in-domain accesses; the
				// countdown must stay within that budget to guarantee firing.
				r.Injected++
				countdown := 1 + env.rng.Intn(4)
				armGated(lib, t, countdown, mem.CodePkuErr)
				payload := make([]byte, n)
				c.Write(in, payload)
				_, err := cr.EncryptUpdate(t, out, in, n)
				if c.FaultInjectorArmed() {
					c.SetFaultInjector(nil)
					r.failf("%s: injector did not fire within EncryptUpdate", label)
				}
				var abn *core.AbnormalExit
				if !errors.As(err, &abn) {
					r.failf("%s: EncryptUpdate returned %v, want abnormal exit", label, err)
				} else if abn.Signal != sig.SIGSEGV || abn.Code != int(mem.CodePkuErr) {
					r.failf("%s: oracle %v code=%d, want SIGSEGV/SEGV_PKUERR", label, abn.Signal, abn.Code)
				}
				env.a.checkFaultLogged(env.as, label, preSeq, mem.CodePkuErr, true)
				env.a.checkRewindDelta(label, preRewinds, 1)
				env.a.checkForensicsExit(label, preForensics, abn)
				env.a.audit(t, label)
				if err := cr.Reinit(t, key); err != nil {
					r.failf("%s: reinit failed: %v", label, err)
				}
				encrypt(label+" post-reinit", 64, true)
				env.a.audit(t, label+" post-reinit")
				r.event("%s countdown=%d rewind reinit", label, countdown)
			case "bad-cert":
				// CVE-2022-3786 analog absorbed by the verifier domain.
				r.Injected++
				_, err := v.Verify(t, cryptolib.MaliciousCertificate())
				var abn *core.AbnormalExit
				if !errors.As(err, &abn) {
					r.failf("%s: verify returned %v, want abnormal exit", label, err)
				} else if abn.Signal != sig.SIGABRT {
					r.failf("%s: oracle %v, want SIGABRT", label, abn.Signal)
				}
				env.a.checkRewindDelta(label, preRewinds, 1)
				env.a.checkForensicsExit(label, preForensics, abn)
				env.a.audit(t, label)
				r.event("%s SIGABRT rewind", label)
			case "good-cert":
				res, err := v.Verify(t, cryptolib.FormatCertificate("alice", "alice@example.com"))
				if err != nil {
					r.failf("%s: verify failed: %v", label, err)
				} else if !res.Valid {
					r.failf("%s: valid certificate rejected", label)
				}
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				r.event("%s valid", label)
			}
		}
		r.event("final rewinds=%d verifier-rewinds=%d", lib.Stats().Rewinds.Load(), v.Rewinds())
		return nil
	})
}
