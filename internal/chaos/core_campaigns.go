package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"sdrad/internal/core"
	"sdrad/internal/galloc"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/tlsf"
)

// errNoFault is returned by attack bodies that ran to completion: the
// scheduled fault never fired, which is itself a campaign failure.
var errNoFault = errors.New("chaos: scheduled fault did not fire")

// coreEnv is the harness shared by the campaigns that drive the SDRaD
// library directly: one process, one attached thread, scrub-on-discard
// enabled so the audit can prove discarded state was really scrubbed.
type coreEnv struct {
	r   *Report
	rng *rand.Rand
	p   *proc.Process
	lib *core.Library
	t   *proc.Thread
	as  *mem.AddressSpace
	a   *auditor
}

func runCoreCampaign(cfg Config, r *Report, body func(env *coreEnv) error) error {
	p := proc.NewProcess("chaos-"+r.Campaign, proc.WithSeed(cfg.Seed))
	rec := cfg.recorder()
	lib, err := core.Setup(p, core.WithScrubOnDiscard(true), core.WithTelemetry(rec))
	if err != nil {
		return err
	}
	defer p.Shutdown()
	return p.Attach("chaos", func(t *proc.Thread) error {
		return body(&coreEnv{
			r:   r,
			rng: rand.New(rand.NewSource(cfg.Seed)),
			p:   p,
			lib: lib,
			t:   t,
			as:  p.AddressSpace(),
			a:   &auditor{r: r, lib: lib, rec: rec},
		})
	})
}

// victimRegion reads the victim domain's provisioned heap region out of an
// audit snapshot, for the post-rewind residual-mapping check.
func victimRegion(rep *core.AuditReport, udi core.UDI) (mem.Addr, uint64) {
	for _, d := range rep.Domains {
		if d.UDI == udi {
			return d.HeapBase, d.HeapSize
		}
	}
	return 0, 0
}

// expectAbnormal checks that a provoked fault produced an abnormal exit of
// the victim domain with the expected oracle, and returns it.
func expectAbnormal(r *Report, label string, gerr error, udi core.UDI, signal sig.Signal) *core.AbnormalExit {
	var abn *core.AbnormalExit
	if !errors.As(gerr, &abn) {
		r.failf("%s: guard returned %v, want abnormal exit", label, gerr)
		return nil
	}
	if abn.FailedUDI != udi {
		r.failf("%s: abnormal exit of domain %d, want %d", label, abn.FailedUDI, udi)
	}
	if abn.Signal != signal {
		r.failf("%s: signal %v, want %v", label, abn.Signal, signal)
	}
	return abn
}

// postRewind runs the full post-rewind invariant audit for a core
// campaign: library audit, discarded-heap residual mappings, mapped-bytes
// stability at the discarded steady state.
func (env *coreEnv) postRewind(label string, heapBase mem.Addr, heapSize uint64) {
	env.a.audit(env.t, label)
	env.a.checkDiscarded(env.as, label, heapBase, heapSize)
	env.a.checkMappedStable("post-rewind", label, env.as.Stats().MappedBytes.Load())
}

// runPKU provokes protection-key violations from inside a nested domain:
// writes and reads of the monitor data domain, writes to the read-only
// root heap, writes to an ungranted data domain, and injector-raised PKU
// faults. Every violation must be absorbed by a rewind of the victim.
func runPKU(cfg Config, r *Report) error {
	const (
		victimUDI = core.UDI(2)
		dataUDI   = core.UDI(7)
	)
	return runCoreCampaign(cfg, r, func(env *coreEnv) error {
		t, lib, c := env.t, env.lib, env.t.CPU()

		rootBuf, err := lib.Malloc(t, core.RootUDI, 128)
		if err != nil {
			return err
		}
		// An inaccessible data domain with no grants: its pages are mapped
		// with a key nobody's policy raises — a pure PKU tripwire.
		if err := lib.InitDomain(t, dataUDI, core.AsData()); err != nil {
			return err
		}
		dataBase, _ := victimRegion(lib.Audit(t), dataUDI)
		env.r.Audits++ // the snapshot above is a full audit too
		if dataBase == 0 {
			return fmt.Errorf("chaos: data domain %d has no heap region", dataUDI)
		}

		vectors := []string{"monitor-write", "monitor-read", "root-write", "data-write", "inject", "benign"}
		for i := 0; i < cfg.Ops; i++ {
			vector := vectors[env.rng.Intn(len(vectors))]
			countdown := 1 + env.rng.Intn(4)
			preSeq := env.as.FaultSeq()
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := env.a.forensicsPre()

			var heapBase mem.Addr
			var heapSize uint64
			gerr := lib.Guard(t, victimUDI, func() error {
				buf, err := lib.Malloc(t, victimUDI, 128)
				if err != nil {
					return err
				}
				rep := lib.Audit(t)
				env.r.Audits++
				for _, f := range rep.Findings {
					env.r.failf("op=%02d %s: pre-attack audit: %s", i, vector, f)
				}
				heapBase, heapSize = victimRegion(rep, victimUDI)
				if err := lib.Enter(t, victimUDI); err != nil {
					return err
				}
				if vector == "inject" {
					armCountdown(c, countdown, mem.CodePkuErr, lib.RootKey())
				}
				for j := 0; j < 4; j++ { // benign in-domain work; hosts the injected fault
					c.WriteU64(buf+mem.Addr(8*j), uint64(i)<<8|uint64(j))
				}
				switch vector {
				case "monitor-write":
					c.WriteU64(lib.MonitorBase(), 0xdead)
				case "monitor-read":
					_ = c.ReadU64(lib.MonitorBase())
				case "root-write":
					c.WriteU64(rootBuf, 0xdead)
				case "data-write":
					c.WriteU64(dataBase, 0xdead)
				case "benign":
					return lib.Exit(t)
				}
				return errNoFault
			}, core.Accessible())

			label := fmt.Sprintf("op=%02d %s", i, vector)
			if vector == "benign" {
				if gerr != nil {
					r.failf("%s: benign op failed: %v", label, gerr)
				}
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				env.a.audit(t, label)
				r.event("%s ok", label)
				continue
			}
			r.Injected++
			abn := expectAbnormal(r, label, gerr, victimUDI, sig.SIGSEGV)
			if abn != nil && abn.Code != int(mem.CodePkuErr) {
				r.failf("%s: fault code %d, want SEGV_PKUERR", label, abn.Code)
			}
			if vector == "inject" && c.FaultInjectorArmed() {
				r.failf("%s: injector still armed after firing", label)
			}
			env.a.checkFaultLogged(env.as, label, preSeq, mem.CodePkuErr, vector == "inject")
			env.a.checkRewindDelta(label, preRewinds, 1)
			env.a.checkForensicsExit(label, preForensics, abn)
			env.postRewind(label, heapBase, heapSize)
			if abn != nil {
				r.event("%s code=SEGV_PKUERR addr=0x%x rewind", label, abn.Addr)
			}
		}
		return nil
	})
}

// runCanary corrupts stack canaries inside a nested domain — a local
// frame's canary popped by the function, an outer frame's canary reached
// by a deeper overflow, and the Enter return record verified during Exit —
// and checks each smash is absorbed as a SIGABRT rewind.
func runCanary(cfg Config, r *Report) error {
	const victimUDI = core.UDI(3)
	return runCoreCampaign(cfg, r, func(env *coreEnv) error {
		t, lib, c := env.t, env.lib, env.t.CPU()
		vectors := []string{"pop-smash", "outer-smash", "exit-smash", "benign"}
		junk := make([]byte, 24)
		for i := range junk {
			junk[i] = 0x6b
		}
		for i := 0; i < cfg.Ops; i++ {
			vector := vectors[env.rng.Intn(len(vectors))]
			// 8 smashes the frame's own canary; 16 also clobbers the Enter
			// return record above it. 24 would run past the stack top into
			// unmapped memory, turning the canary oracle into a SIGSEGV.
			overrun := 8 * (1 + env.rng.Intn(2))
			preSeq := env.as.FaultSeq()
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := env.a.forensicsPre()

			var heapBase mem.Addr
			var heapSize uint64
			gerr := lib.Guard(t, victimUDI, func() error {
				rep := lib.Audit(t)
				env.r.Audits++
				for _, f := range rep.Findings {
					env.r.failf("op=%02d %s: pre-attack audit: %s", i, vector, f)
				}
				heapBase, heapSize = victimRegion(rep, victimUDI)
				if err := lib.Enter(t, victimUDI); err != nil {
					return err
				}
				stk, err := lib.Stack(t, victimUDI)
				if err != nil {
					return err
				}
				switch vector {
				case "pop-smash":
					// Overflow the frame's own locals into its canary; the
					// pop is the __stack_chk_fail analog.
					f, err := stk.PushFrame(c, 64)
					if err != nil {
						return err
					}
					c.Write(f.Locals()+64, junk[:overrun])
					return f.Pop(c)
				case "outer-smash":
					// A deeper frame overflows far enough to clobber its
					// caller's canary; the inner pop is clean and the outer
					// pop detects the smash.
					outer, err := stk.PushFrame(c, 32)
					if err != nil {
						return err
					}
					inner, err := stk.PushFrame(c, 64)
					if err != nil {
						return err
					}
					// inner locals (64) + inner canary (8) + outer locals (32)
					// puts the outer canary 104 bytes above inner.Locals().
					c.Write(inner.Locals()+104, junk[:8])
					if err := inner.Pop(c); err != nil {
						return err
					}
					return outer.Pop(c)
				case "exit-smash":
					// Clobber the Enter return record at the stack top; Exit
					// verifies it and must detect the smash.
					c.WriteU64(stk.Base()+mem.Addr(stk.Size())-8, 0x6b6b6b6b6b6b6b6b)
					return lib.Exit(t)
				default: // benign
					f, err := stk.PushFrame(c, 64)
					if err != nil {
						return err
					}
					c.Write(f.Locals(), junk[:16]) // stays inside the locals
					if err := f.Pop(c); err != nil {
						return err
					}
					return lib.Exit(t)
				}
			}, core.Accessible())

			label := fmt.Sprintf("op=%02d %s", i, vector)
			if vector == "benign" {
				if gerr != nil {
					r.failf("%s: benign op failed: %v", label, gerr)
				}
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				env.a.audit(t, label)
				r.event("%s ok", label)
				continue
			}
			r.Injected++
			abn := expectAbnormal(r, label, gerr, victimUDI, sig.SIGABRT)
			// Canary smashes are detected by the stack protector, not the
			// MMU: the fault log must not have moved.
			if seq := env.as.FaultSeq(); seq != preSeq {
				r.failf("%s: canary smash raised %d memory faults", label, seq-preSeq)
			}
			env.a.checkRewindDelta(label, preRewinds, 1)
			env.a.checkForensicsExit(label, preForensics, abn)
			env.postRewind(label, heapBase, heapSize)
			if abn != nil {
				r.event("%s SIGABRT addr=0x%x rewind", label, abn.Addr)
			}
		}
		return nil
	})
}

// runOOB provokes out-of-bounds and unmapped accesses from inside a
// nested domain: heap overruns past the domain's provisioned region, and
// wild reads/writes of low and high unmapped addresses.
func runOOB(cfg Config, r *Report) error {
	const victimUDI = core.UDI(4)
	return runCoreCampaign(cfg, r, func(env *coreEnv) error {
		t, lib, c := env.t, env.lib, env.t.CPU()
		vectors := []string{"heap-overrun", "wild-low", "wild-high", "benign"}
		for i := 0; i < cfg.Ops; i++ {
			vector := vectors[env.rng.Intn(len(vectors))]
			offset := mem.Addr(8 * env.rng.Intn(64))
			preSeq := env.as.FaultSeq()
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := env.a.forensicsPre()

			var heapBase mem.Addr
			var heapSize uint64
			gerr := lib.Guard(t, victimUDI, func() error {
				buf, err := lib.Malloc(t, victimUDI, 64)
				if err != nil {
					return err
				}
				rep := lib.Audit(t)
				env.r.Audits++
				for _, f := range rep.Findings {
					env.r.failf("op=%02d %s: pre-attack audit: %s", i, vector, f)
				}
				heapBase, heapSize = victimRegion(rep, victimUDI)
				if err := lib.Enter(t, victimUDI); err != nil {
					return err
				}
				c.WriteU64(buf, uint64(i))
				switch vector {
				case "heap-overrun":
					// First address past the provisioned heap region: either
					// unmapped or another domain's pages — a trap either way.
					c.WriteU64(heapBase+mem.Addr(heapSize)+offset, 0xdead)
				case "wild-low":
					_ = c.ReadU8(0x10 + offset)
				case "wild-high":
					c.WriteU8(mem.Addr(1<<40)+offset, 0xff)
				case "benign":
					return lib.Exit(t)
				}
				return errNoFault
			}, core.Accessible())

			label := fmt.Sprintf("op=%02d %s", i, vector)
			if vector == "benign" {
				if gerr != nil {
					r.failf("%s: benign op failed: %v", label, gerr)
				}
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				env.a.audit(t, label)
				r.event("%s ok", label)
				continue
			}
			r.Injected++
			abn := expectAbnormal(r, label, gerr, victimUDI, sig.SIGSEGV)
			if abn != nil {
				code := mem.FaultCode(abn.Code)
				if code != mem.CodeMapErr && code != mem.CodeAccErr && code != mem.CodePkuErr {
					r.failf("%s: unexpected fault code %d", label, abn.Code)
				}
				env.a.checkFaultLogged(env.as, label, preSeq, code, false)
			}
			env.a.checkRewindDelta(label, preRewinds, 1)
			env.a.checkForensicsExit(label, preForensics, abn)
			env.postRewind(label, heapBase, heapSize)
			if abn != nil {
				r.event("%s code=%v addr=0x%x rewind", label, mem.FaultCode(abn.Code), abn.Addr)
			}
		}
		return nil
	})
}

// errInjectedOOM is the sentinel the allocation-fault hooks return.
var errInjectedOOM = errors.New("chaos: injected allocation failure")

// allocBlock is one live allocation with its fill pattern.
type allocBlock struct {
	ptr  mem.Addr
	size int
	fill byte
}

// runAlloc injects allocation failures into the tlsf and galloc
// allocators under a randomized alloc/free load. For this campaign
// Injected counts hook-raised OOMs and Absorbed counts the errors the
// caller observed: every injected failure must surface as a clean error,
// leave the heap invariants intact (tlsf Check), and corrupt no live
// allocation.
func runAlloc(cfg Config, r *Report) error {
	p := proc.NewProcess("chaos-alloc", proc.WithSeed(cfg.Seed))
	defer p.Shutdown()
	return p.Attach("chaos", func(t *proc.Thread) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		as, c := p.AddressSpace(), t.CPU()

		tb, err := as.MapAnon(128<<10, mem.ProtRW, 0)
		if err != nil {
			return err
		}
		th, err := tlsf.Init(c, tb, 128<<10)
		if err != nil {
			return err
		}
		gb, err := as.MapAnon(64<<10, mem.ProtRW, 0)
		if err != nil {
			return err
		}
		gh, err := galloc.Init(c, gb, 64<<10)
		if err != nil {
			return err
		}

		verify := func(label string, live []allocBlock) {
			if err := th.Check(c); err != nil {
				r.failf("%s: tlsf check: %v", label, err)
			}
			for _, b := range live {
				for off := 0; off < b.size; off += 64 {
					if got := c.ReadU8(b.ptr + mem.Addr(off)); got != b.fill {
						r.failf("%s: live block 0x%x corrupted at +%d: 0x%02x, want 0x%02x",
							label, uint64(b.ptr), off, got, b.fill)
						break
					}
				}
			}
		}

		var tlive, glive []allocBlock
		for i := 0; i < cfg.Ops; i++ {
			useTLSF := rng.Intn(2) == 0
			name := "galloc"
			if useTLSF {
				name = "tlsf"
			}
			size := 16 << rng.Intn(6)
			inject := rng.Intn(3) == 0
			free := rng.Intn(4) == 0
			label := fmt.Sprintf("op=%02d %s", i, name)

			live := &glive
			alloc := func(sz uint64) (mem.Addr, error) { return gh.Alloc(c, sz) }
			release := func(ptr mem.Addr) error { return gh.Free(c, ptr) }
			hook := gh.SetAllocHook
			if useTLSF {
				live = &tlive
				alloc = func(sz uint64) (mem.Addr, error) { return th.Alloc(c, sz) }
				release = func(ptr mem.Addr) error { return th.Free(c, ptr) }
				hook = th.SetAllocHook
			}

			if free && len(*live) > 0 {
				idx := rng.Intn(len(*live))
				b := (*live)[idx]
				if err := release(b.ptr); err != nil {
					r.failf("%s: free 0x%x: %v", label, uint64(b.ptr), err)
				}
				*live = append((*live)[:idx], (*live)[idx+1:]...)
				verify(label, *live)
				r.event("%s free size=%d", label, b.size)
				continue
			}

			if inject {
				hook(func(uint64) error { return errInjectedOOM })
				r.Injected++
			}
			ptr, err := alloc(uint64(size))
			hook(nil)
			switch {
			case inject:
				if errors.Is(err, errInjectedOOM) {
					r.Absorbed++
				} else {
					r.failf("%s: injected OOM not surfaced: ptr=0x%x err=%v", label, uint64(ptr), err)
				}
				verify(label, *live)
				r.event("%s alloc size=%d injected-oom", label, size)
			case err != nil:
				// Genuine exhaustion under load is legitimate; record it.
				verify(label, *live)
				r.event("%s alloc size=%d oom", label, size)
			default:
				fill := byte(0x11 + i%0xe0)
				for off := 0; off < size; off += 64 {
					c.WriteU8(ptr+mem.Addr(off), fill)
				}
				*live = append(*live, allocBlock{ptr: ptr, size: size, fill: fill})
				verify(label, *live)
				r.event("%s alloc size=%d ok", label, size)
			}
		}

		// Drain both heaps; every allocation must free cleanly and the
		// final check must pass with empty free-list damage.
		for _, b := range tlive {
			if err := th.Free(c, b.ptr); err != nil {
				r.failf("drain: tlsf free 0x%x: %v", uint64(b.ptr), err)
			}
		}
		for _, b := range glive {
			if err := gh.Free(c, b.ptr); err != nil {
				r.failf("drain: galloc free 0x%x: %v", uint64(b.ptr), err)
			}
		}
		if err := th.Check(c); err != nil {
			r.failf("drain: tlsf check: %v", err)
		}
		if got := th.AllocCount() - th.FreeCount(); got != 0 {
			r.failf("drain: tlsf alloc/free imbalance: %d", got)
		}
		r.event("drain ok tlsf-allocs=%d galloc-allocs=%d", th.AllocCount(), gh.AllocCount())
		return nil
	})
}
