package chaos

import (
	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// armCountdown installs a one-shot injector that lets countdown-1 accesses
// pass and turns the next one into a fault with the given code. The caller
// arms it from inside the victim domain, so the counted accesses are
// domain accesses.
func armCountdown(c *mem.CPU, countdown int, code mem.FaultCode, pkey int) {
	n := 0
	c.SetFaultInjector(func(_ mem.Addr, kind mem.AccessKind) *mem.Fault {
		n++
		if n < countdown {
			return nil
		}
		return &mem.Fault{Kind: kind, Code: code, PKey: pkey}
	})
}

// armGated installs a one-shot injector for workload campaigns, where the
// serving thread alternates between root and nested domains: it only
// counts accesses made while executing inside a nested domain, and never
// fires on the monitor's own ledger page. Firing in the root domain would
// be an unrecoverable fault (process death) rather than a rewind, and a
// fault on the ledger write would desynchronize the very counters the
// audit checks — neither is the scenario under test.
func armGated(lib *core.Library, t *proc.Thread, countdown int, code mem.FaultCode) {
	c := t.CPU()
	monitorPage := lib.MonitorBase() &^ (mem.PageSize - 1)
	n := 0
	c.SetFaultInjector(func(addr mem.Addr, kind mem.AccessKind) *mem.Fault {
		if lib.Current(t) == core.RootUDI {
			return nil
		}
		if addr&^(mem.PageSize-1) == monitorPage {
			return nil
		}
		n++
		if n < countdown {
			return nil
		}
		return &mem.Fault{Kind: kind, Code: code, PKey: lib.RootKey()}
	})
}

// mutate flips 1-3 bytes of a protocol request at seeded positions,
// optionally truncating it — the fuzz-shaped malformed-input class. The
// input is copied, never modified in place.
func mutate(rng interface{ Intn(int) int }, req []byte) []byte {
	out := make([]byte, len(req))
	copy(out, req)
	if len(out) == 0 {
		return out
	}
	if rng.Intn(4) == 0 {
		out = out[:1+rng.Intn(len(out))]
	}
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips && len(out) > 0; i++ {
		pos := rng.Intn(len(out))
		out[pos] ^= byte(1 + rng.Intn(255))
	}
	return out
}
