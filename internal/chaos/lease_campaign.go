package chaos

import (
	"fmt"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/sig"
)

// runLease attacks the span-lease check-elision fast path (internal/mem
// lease.go): domain code that touches memory through verified native
// windows instead of checked accessors. The property under test is that
// eliding the per-access check changes NOTHING about fault semantics:
//
//   - arming an injector instantly tears down every window, so the access
//     falls back checked and the injected fault fires with the same
//     si_code at the same first faulting byte a lease-free build reports,
//     producing exactly one forensics report;
//   - an access outside the leased span refuses (rather than faulting or
//     silently eliding), and the checked fallback raises the genuine
//     out-of-bounds fault at the exact byte;
//   - an absorbed rewind revokes the victim domain's windows;
//   - epoch revocation mid-workload is absorbed by one renewal walk, with
//     no rewind and no forensics noise.
func runLease(cfg Config, r *Report) error {
	const victimUDI = core.UDI(5)
	return runCoreCampaign(cfg, r, func(env *coreEnv) error {
		t, lib, c := env.t, env.lib, env.t.CPU()
		vectors := []string{"inject-under-lease", "oob-past-lease", "epoch-renew", "benign"}
		for i := 0; i < cfg.Ops; i++ {
			vector := vectors[env.rng.Intn(len(vectors))]
			countdown := 1 + env.rng.Intn(3)
			offset := mem.Addr(8 * env.rng.Intn(64))
			preSeq := env.as.FaultSeq()
			preRewinds := lib.Stats().Rewinds.Load()
			preForensics := env.a.forensicsPre()

			var heapBase mem.Addr
			var heapSize uint64
			var lease *mem.Lease
			var wantAddr mem.Addr
			gerr := lib.Guard(t, victimUDI, func() error {
				buf, err := lib.Malloc(t, victimUDI, 64)
				if err != nil {
					return err
				}
				rep := lib.Audit(t)
				env.r.Audits++
				for _, f := range rep.Findings {
					env.r.failf("op=%02d %s: pre-attack audit: %s", i, vector, f)
				}
				heapBase, heapSize = victimRegion(rep, victimUDI)
				if err := lib.Enter(t, victimUDI); err != nil {
					return err
				}
				// The leased fast path: a verified write window over the
				// domain buffer, used the way the hardened servers use their
				// slot leases.
				lease = c.SpanLease(buf, 64, mem.AccessWrite)
				w, ok := lease.Window()
				if !ok {
					return fmt.Errorf("chaos: in-domain lease refused")
				}
				for j := range w {
					w[j] = byte(i)
				}
				// The window is the real backing: the checked accessor must
				// agree with what went through the lease.
				if got := c.ReadU8(buf + 7); got != byte(i) {
					env.r.failf("op=%02d %s: leased write invisible to checked read: %#x", i, vector, got)
				}
				switch vector {
				case "inject-under-lease":
					armCountdown(c, countdown, mem.CodePkuErr, lib.RootKey())
					// Arming must revoke the window immediately — one elided
					// access here would dodge the injected fault.
					if lease.Valid() {
						env.r.failf("op=%02d %s: lease valid with injector armed", i, vector)
					}
					if _, ok := lease.Bytes(buf, 8); ok {
						env.r.failf("op=%02d %s: leased access elided the armed injector", i, vector)
					}
					// The fallback path: checked writes, on which the
					// countdown fires at an exact, predictable byte.
					wantAddr = buf + mem.Addr(8*(countdown-1))
					for j := 0; j < 4; j++ {
						c.WriteU64(buf+mem.Addr(8*j), uint64(i))
					}
					return errNoFault
				case "oob-past-lease":
					// Past the end of the window: the lease must refuse, and
					// the checked fallback raises the genuine fault at the
					// exact first faulting byte.
					wantAddr = heapBase + mem.Addr(heapSize) + offset
					if _, ok := lease.Bytes(wantAddr, 8); ok {
						env.r.failf("op=%02d %s: lease served bytes outside its span", i, vector)
					}
					c.WriteU64(wantAddr, 0xdead)
					return errNoFault
				case "epoch-renew":
					// A policy-change revocation mid-workload: one renewal
					// walk brings the window back, nothing rewinds.
					env.as.BumpLeaseEpoch()
					if lease.Valid() {
						env.r.failf("op=%02d %s: lease valid across epoch bump", i, vector)
					}
					w, ok := lease.Bytes(buf, 16)
					if !ok {
						env.r.failf("op=%02d %s: lease did not renew after epoch bump", i, vector)
					} else {
						w[0] = byte(i) + 1
					}
					return lib.Exit(t)
				default: // benign
					return lib.Exit(t)
				}
			}, core.Accessible())

			label := fmt.Sprintf("op=%02d %s", i, vector)
			switch vector {
			case "benign", "epoch-renew":
				if gerr != nil {
					r.failf("%s: benign op failed: %v", label, gerr)
				}
				env.a.checkRewindDelta(label, preRewinds, 0)
				env.a.checkForensics(label, preForensics, 0)
				env.a.audit(t, label)
				r.event("%s ok", label)
				continue
			case "inject-under-lease":
				r.Injected++
				abn := expectAbnormal(r, label, gerr, victimUDI, sig.SIGSEGV)
				if abn != nil {
					if abn.Code != int(mem.CodePkuErr) {
						r.failf("%s: fault code %d, want SEGV_PKUERR", label, abn.Code)
					}
					if abn.Addr != uint64(wantAddr) {
						r.failf("%s: fault at 0x%x, want exact byte 0x%x", label, abn.Addr, uint64(wantAddr))
					}
				}
				if c.FaultInjectorArmed() {
					r.failf("%s: injector still armed after firing", label)
				}
				env.a.checkFaultLogged(env.as, label, preSeq, mem.CodePkuErr, true)
				env.a.checkForensicsExit(label, preForensics, abn)
			case "oob-past-lease":
				r.Injected++
				abn := expectAbnormal(r, label, gerr, victimUDI, sig.SIGSEGV)
				if abn != nil {
					code := mem.FaultCode(abn.Code)
					if code != mem.CodeMapErr && code != mem.CodeAccErr && code != mem.CodePkuErr {
						r.failf("%s: unexpected fault code %d", label, abn.Code)
					}
					if abn.Addr != uint64(wantAddr) {
						r.failf("%s: fault at 0x%x, want exact byte 0x%x", label, abn.Addr, uint64(wantAddr))
					}
					env.a.checkFaultLogged(env.as, label, preSeq, code, false)
				}
				env.a.checkForensicsExit(label, preForensics, abn)
			}
			// The rewind must have revoked the victim's window: using it
			// after the domain was discarded would read scrubbed or
			// repurposed memory.
			if lease != nil && lease.Valid() {
				r.failf("%s: lease still valid after rewind revoked the domain", label)
			}
			env.a.checkRewindDelta(label, preRewinds, 1)
			env.postRewind(label, heapBase, heapSize)
			if abnAddr := wantAddr; abnAddr != 0 {
				r.event("%s countdown=%d addr=0x%x rewind", label, countdown, uint64(abnAddr))
			}
		}
		return nil
	})
}
