package chaos

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
)

// runRouteCampaign drives load-aware connection placement and
// cross-worker stealing through their four contracts on a two-worker
// hardened memcached with a hand-advanced clock:
//
//  1. Placement steers toward calm workers: an idle cluster reproduces
//     the legacy round-robin fill order exactly, and after one absorbed
//     trap every new connection avoids the rewind-hot worker.
//  2. Stealing is boundary-aligned: with the victim parked, an idle
//     floor sibling takes shard-affinity-aligned halves of the victim's
//     steal-eligible backlog and serves them, leaving the final pending
//     event (latency, not backlog) to its owner.
//  3. A fault inside a stolen segment discards exactly that segment —
//     one rewind, one forensics report agreeing with the MMU fault log
//     — while the other stolen shard group and the victim's remaining
//     backlog commit; the thief's hot window stops further stealing.
//  4. A controller pinned at the AIMD floor by a hot rewind window for
//     a full window escalates the event domain into policy Backoff via
//     the pressure side channel, with rewind-ladder thresholds set far
//     out of reach so the signal is unambiguous.
//
// The manual clock freezes the rewind window between explicit advances,
// so window heat — and therefore every placement and floor-pin decision
// — is a deterministic function of the injected traps.
func runRouteCampaign(cfg Config, r *Report) error {
	const (
		maxBatch = 16
		window   = time.Second
	)
	rec := cfg.recorder()
	clk := &policy.ManualClock{}
	// Rewind-ladder thresholds far out of reach: any Backoff state in
	// phase 4 must come from the floor-pin pressure signal alone.
	eng := policy.New(policy.Config{
		BackoffThreshold:    1000,
		QuarantineThreshold: 1001,
		ShedThreshold:       1002,
		Clock:               clk.Now,
	})
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   2,
		HashPower: 10,
		MaxBatch:  maxBatch,
		Seed:      cfg.Seed,
		Telemetry: rec,
		Policy:    eng,
		Sched: &sched.Config{
			Route:         true,
			Steal:         true,
			IdleRounds:    1,
			StealInterval: 100 * time.Microsecond,
			Window:        window,
			Clock:         clk.Now,
		},
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	lib := s.Library()
	as := s.Process().AddressSpace()
	a := &auditor{r: r, lib: lib, rec: rec}
	auditOn := func(idx int, label string) {
		label = fmt.Sprintf("%s worker=%d", label, idx)
		// Quiesce the worker through one monitor transition first: a
		// keyless `version` is served on the pinned worker through the
		// full guard path, so its register is the post-transition value
		// the audit's PKRU condition is defined over. Without this the
		// register can be a stale snapshot from before a sibling's rewind
		// discarded a domain (per-thread PKRU has no cross-thread
		// shootdown), which the audit rightly flags as a stale grant.
		if _, closed, err := s.ConnOn(idx).Do([]byte("version\r\n")); err != nil || closed {
			r.failf("%s: quiesce closed=%v err=%v", label, closed, err)
		}
		if err := s.ConnOn(idx).Inspect(func(t *proc.Thread) error {
			a.audit(t, label)
			if err := s.Storage().AuditShards(t.CPU()); err != nil {
				r.failf("%s: shard audit: %v", label, err)
			}
			return nil
		}); err != nil {
			r.failf("%s: inspect worker %d failed: %v", label, idx, err)
		}
	}
	// Park releases are idempotent and all registered on a deferred
	// sweep, so an error return never strands a worker inside its
	// control event (which would deadlock the deferred Stop).
	var parks []func()
	defer func() {
		for _, f := range parks {
			f()
		}
	}()
	parkOn := func(idx int) (release func()) {
		parked := make(chan struct{})
		rel := make(chan struct{})
		go func() {
			_ = s.ConnOn(idx).Inspect(func(*proc.Thread) error {
				close(parked)
				<-rel
				return nil
			})
		}()
		<-parked
		var once sync.Once
		f := func() { once.Do(func() { close(rel) }) }
		parks = append(parks, f)
		return f
	}
	waitDepthOn := func(idx, want int) error {
		deadline := time.Now().Add(5 * time.Second)
		for s.QueueDepth(idx) < want {
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: route: worker %d queue depth %d never reached %d",
					idx, s.QueueDepth(idx), want)
			}
			time.Sleep(10 * time.Microsecond)
		}
		return nil
	}
	waitFloorOn := func(idx int) error {
		deadline := time.Now().Add(5 * time.Second)
		for s.SchedSnapshots()[idx].Bound != 1 {
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: route: worker %d bound stuck at %d",
					idx, s.SchedSnapshots()[idx].Bound)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}
	// mineKeys finds n distinct keys that route to worker wi and share
	// one storage shard not in avoid, so staged backlogs have exact
	// shard-segment compositions. Each phase mines a fresh shard: the
	// fault isolation claims compare specific shard groups.
	avoid := map[int]bool{}
	mineKeys := func(wi, n int, prefix string) (keys []string, shard int) {
		shard = -1
		for i := 0; len(keys) < n && i < 200000; i++ {
			k := fmt.Sprintf("%s%05d", prefix, i)
			if s.KeyWorker([]byte(k)) != wi {
				continue
			}
			sh := s.Storage().ShardFor([]byte(k))
			if shard < 0 && !avoid[sh] {
				shard = sh
			}
			if sh == shard {
				keys = append(keys, k)
			}
		}
		avoid[shard] = true
		return keys, shard
	}

	// ---- Phase 1: placement. An idle two-worker cluster fills 0,1,0,1
	// — the legacy round-robin order through the scorer's tie rotation.
	var fill []int
	for i := 0; i < 4; i++ {
		fill = append(fill, s.NewConn().WorkerIndex())
	}
	for i, w := range fill {
		if w != i%2 {
			r.failf("phase=place: idle conn %d pinned to worker %d, want %d", i, w, i%2)
		}
	}
	// One trap routed to worker 0 by its key's shard affinity. A single
	// pending event is never stolen (one event is latency, not backlog),
	// so the rewind lands on worker 0 regardless of the idle sibling.
	trapKeys, trapShard := mineKeys(0, 1, "rt-atk")
	if len(trapKeys) != 1 {
		return fmt.Errorf("chaos: route: trap key mining failed")
	}
	preRewinds := lib.Stats().Rewinds.Load()
	preForensics := a.forensicsPre()
	evil := s.NewConn()
	if _, closed, err := evil.Do(memcache.FormatBSet(trapKeys[0], 1<<20, nil)); err != nil || !closed {
		r.failf("phase=place: trap closed=%v err=%v", closed, err)
	}
	r.Injected++
	a.checkRewindDelta("phase=place", preRewinds, 1)
	a.checkForensicsFault(as, "phase=place", preForensics)
	// The frozen clock keeps worker 0's rewind window hot, so every new
	// connection must land on the calm worker 1.
	for i := 0; i < 4; i++ {
		if w := s.NewConn().WorkerIndex(); w != 1 {
			r.failf("phase=place: post-trap conn %d pinned to rewind-hot worker %d, want 1", i, w)
		}
	}
	r.event("phase=place idle-fill=0,1,0,1 post-trap=1,1,1,1 rewinds=1")
	auditOn(0, "phase=place")
	auditOn(1, "phase=place")

	// ---- Phase 2: boundary-aligned stealing. Park both workers, stage
	// four same-shard steal-eligible sets on worker 0, then release only
	// the thief: from the floor it takes half the backlog per round
	// (4 -> take 2, 2 -> take 1) and serves it while the victim stays
	// parked; the last pending event belongs to the victim.
	if err := waitFloorOn(1); err != nil {
		return err
	}
	releaseVictim := parkOn(0)
	releaseThief := parkOn(1)
	stealKeys, stealShard := mineKeys(0, 4, "rt-st")
	if len(stealKeys) != 4 || stealShard == trapShard {
		return fmt.Errorf("chaos: route: steal key mining failed (%d keys, shard %d)", len(stealKeys), stealShard)
	}
	type outcome struct {
		key    string
		resp   []byte
		closed bool
		err    error
	}
	stage := func(results chan outcome, depth int, key string, req []byte) error {
		go func() {
			c := s.ConnOn(0)
			resp, closed, err := c.Do(req)
			results <- outcome{key: key, resp: resp, closed: closed, err: err}
		}()
		return waitDepthOn(0, depth)
	}
	stealRes := make(chan outcome, len(stealKeys))
	for i, k := range stealKeys {
		if err := stage(stealRes, i+1, k, memcache.FormatSet(k, []byte("stolen-ok"), 0)); err != nil {
			return err
		}
	}
	preSteals, preStolen, preSegs := s.Steals(), s.StolenEvents(), s.StealSegments()
	preRewinds = lib.Stats().Rewinds.Load()
	preForensics = a.forensicsPre()
	releaseThief()
	for i := 0; i < len(stealKeys)-1; i++ {
		select {
		case o := <-stealRes:
			if o.err != nil || o.closed || !bytes.Equal(o.resp, []byte("STORED\r\n")) {
				r.failf("phase=steal: stolen set %q: resp=%q closed=%v err=%v", o.key, o.resp, o.closed, o.err)
			}
		case <-time.After(5 * time.Second):
			return fmt.Errorf("chaos: route: only %d stolen responses arrived with the victim parked", i)
		}
	}
	if d := s.Steals() - preSteals; d != 2 {
		r.failf("phase=steal: %d steal rounds, want 2", d)
	}
	if d := s.StolenEvents() - preStolen; d != 3 {
		r.failf("phase=steal: %d events stolen, want 3", d)
	}
	if d := s.StealSegments() - preSegs; d != 2 {
		r.failf("phase=steal: %d stolen guard scopes, want 2 (one same-shard group per round)", d)
	}
	a.checkRewindDelta("phase=steal", preRewinds, 0)
	a.checkForensics("phase=steal", preForensics, 0)
	releaseVictim()
	select {
	case o := <-stealRes:
		if o.err != nil || o.closed || !bytes.Equal(o.resp, []byte("STORED\r\n")) {
			r.failf("phase=steal: victim-owned set %q: resp=%q closed=%v err=%v", o.key, o.resp, o.closed, o.err)
		}
	case <-time.After(5 * time.Second):
		return fmt.Errorf("chaos: route: victim-owned response never arrived")
	}
	r.event("phase=steal stolen=3 rounds=2 segments=2 victim-served=1 rewinds=0")
	auditOn(0, "phase=steal")
	auditOn(1, "phase=steal")

	// ---- Phase 3: fault in a stolen segment. Six events staged on the
	// parked victim: a bset trap plus one innocent on shard A, then four
	// innocents on shard B. The thief takes half — {trap, innocentA, b0}
	// — and runs them as two shard groups; the trap must discard only
	// its own group.
	if err := waitFloorOn(1); err != nil {
		return err
	}
	releaseVictim = parkOn(0)
	releaseThief = parkOn(1)
	aKeys, aShard := mineKeys(0, 2, "rt-bl-a")
	bKeys, bShard := mineKeys(0, 4, "rt-bl-b")
	if len(aKeys) != 2 || len(bKeys) != 4 || aShard == bShard {
		return fmt.Errorf("chaos: route: blast key mining failed (%d/%d keys, shards %d/%d)",
			len(aKeys), len(bKeys), aShard, bShard)
	}
	trapKey, innocentA := aKeys[0], aKeys[1]
	blastRes := make(chan outcome, 6)
	if err := stage(blastRes, 1, trapKey, memcache.FormatBSet(trapKey, 1<<20, nil)); err != nil {
		return err
	}
	if err := stage(blastRes, 2, innocentA, memcache.FormatSet(innocentA, []byte("discarded"), 0)); err != nil {
		return err
	}
	for i, k := range bKeys {
		if err := stage(blastRes, 3+i, k, memcache.FormatSet(k, []byte("landed"), 0)); err != nil {
			return err
		}
	}
	preSteals, preStolen, preSegs = s.Steals(), s.StolenEvents(), s.StealSegments()
	preRewinds = lib.Stats().Rewinds.Load()
	preForensics = a.forensicsPre()
	releaseThief()
	r.Injected++
	stolen := map[string]outcome{}
	for i := 0; i < 3; i++ {
		select {
		case o := <-blastRes:
			stolen[o.key] = o
		case <-time.After(5 * time.Second):
			return fmt.Errorf("chaos: route: stolen outcome %d never arrived with the victim parked", i)
		}
	}
	if o, ok := stolen[trapKey]; !ok || !o.closed {
		r.failf("phase=blast: trap outcome %+v, want closed by the segment rewind", o)
	}
	if o, ok := stolen[innocentA]; !ok || !o.closed {
		r.failf("phase=blast: same-segment innocent outcome %+v, want closed with its segment", o)
	}
	if o, ok := stolen[bKeys[0]]; !ok || o.closed || !bytes.Equal(o.resp, []byte("STORED\r\n")) {
		r.failf("phase=blast: other-segment stolen outcome %+v, want committed", o)
	}
	a.checkRewindDelta("phase=blast", preRewinds, 1)
	a.checkForensicsFault(as, "phase=blast", preForensics)
	if d := s.Steals() - preSteals; d != 1 {
		r.failf("phase=blast: %d steal rounds, want 1 (the hot window stops the thief)", d)
	}
	if d := s.StolenEvents() - preStolen; d != 3 {
		r.failf("phase=blast: %d events stolen, want 3", d)
	}
	if d := s.StealSegments() - preSegs; d != 2 {
		r.failf("phase=blast: %d stolen guard scopes, want 2", d)
	}
	if wr := s.SchedSnapshots()[1].WindowRewinds; wr != 1 {
		r.failf("phase=blast: thief window rewinds = %d, want 1", wr)
	}
	releaseVictim()
	for i := 0; i < 3; i++ {
		select {
		case o := <-blastRes:
			if o.err != nil || o.closed || !bytes.Equal(o.resp, []byte("STORED\r\n")) {
				r.failf("phase=blast: victim outcome %+v, want committed untouched", o)
			}
		case <-time.After(5 * time.Second):
			return fmt.Errorf("chaos: route: victim outcome never arrived after release")
		}
	}
	probe := s.NewConn()
	if resp, closed, err := probe.Do(memcache.FormatGet(innocentA)); err != nil || closed {
		r.failf("phase=blast: probe %s: closed=%v err=%v", innocentA, closed, err)
	} else if _, _, ok := memcache.ParseGetValue(resp); ok {
		r.failf("phase=blast: write from the faulting stolen segment leaked into the database")
	}
	for _, k := range bKeys {
		resp, closed, err := probe.Do(memcache.FormatGet(k))
		if err != nil || closed {
			r.failf("phase=blast: probe %s: closed=%v err=%v", k, closed, err)
			continue
		}
		if val, _, ok := memcache.ParseGetValue(resp); !ok || !bytes.Equal(val, []byte("landed")) {
			r.failf("phase=blast: innocent write %s = %q ok=%v, want committed", k, val, ok)
		}
	}
	r.event("phase=blast stolen-closed=2 stolen-committed=1 victim-committed=3 rewinds=1 thief-window=1")
	auditOn(0, "phase=blast")
	auditOn(1, "phase=blast")

	// ---- Phase 4: floor-pinned policy escalation. The thief stays
	// parked so every keyed event belongs to worker 0. One trap heats
	// the window at t0; once idle collapse parks the bound at 1 the
	// controller starts the pin timer. A second trap at t0+W/2 keeps the
	// window hot across the prune horizon, and at t0+W the pin has
	// lasted a full window: exactly one OnFloorPinned fires, escalating
	// the event domain into Backoff through the pressure side channel.
	releaseThief = parkOn(1)
	fire := func(label string) {
		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()
		evil := s.ConnOn(0)
		if _, closed, err := evil.Do(memcache.FormatBSet(trapKeys[0], 1<<20, nil)); err != nil || !closed {
			r.failf("%s: trap closed=%v err=%v", label, closed, err)
		}
		r.Injected++
		a.checkRewindDelta(label, preRewinds, 1)
		a.checkForensicsFault(as, label, preForensics)
	}
	poke := func(label string) {
		// A keyed get forces one ObserveRound on worker 0 so the floor-pin
		// timer is read at the current manual time, not on a racing idle
		// tick.
		c := s.ConnOn(0)
		if _, closed, err := c.Do(memcache.FormatGet(stealKeys[0])); err != nil || closed {
			r.failf("%s: poke closed=%v err=%v", label, closed, err)
		}
	}
	fire("phase=pin trap=0")
	if err := waitFloorOn(0); err != nil {
		return err
	}
	poke("phase=pin poke=0") // pin timer armed at t0
	clk.Advance(window / 2)
	fire("phase=pin trap=1") // fresh heat at t0+W/2 survives the prune below
	clk.Advance(window / 2)
	poke("phase=pin poke=1") // t0+W: pinned a full window -> fires
	snap0 := s.SchedSnapshots()[0]
	if snap0.FloorPins != 1 {
		r.failf("phase=pin: %d floor pins, want exactly 1", snap0.FloorPins)
	}
	var ds *policy.DomainSnapshot
	for _, d := range eng.Snapshot() {
		if d.UDI == memcache.EventDomainUDI() {
			c := d
			ds = &c
		}
	}
	if ds == nil {
		r.failf("phase=pin: no policy state for the event domain")
	} else {
		if ds.State != policy.StateBackoff.String() {
			r.failf("phase=pin: event-domain policy state %s, want %s", ds.State, policy.StateBackoff)
		}
		if ds.Escalations != 1 {
			r.failf("phase=pin: %d escalations, want exactly 1 (one pin, one Backoff entry)", ds.Escalations)
		}
	}
	r.event("phase=pin floorpins=1 state=Backoff escalations=1")
	auditOn(0, "phase=pin")
	releaseThief()
	auditOn(1, "phase=pin")

	if crashed, cause := s.Crashed(); crashed {
		return fmt.Errorf("chaos: server process died: %v", cause)
	}
	r.event("final rewinds=%d steals=%d stolen=%d", lib.Stats().Rewinds.Load(), s.Steals(), s.StolenEvents())
	return nil
}
