package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"sdrad/internal/cryptolib"
	"sdrad/internal/httpd"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// httpStatus extracts the status code token from a response for the
// schedule ("200", "400", "closed", ...).
func httpStatus(resp []byte, closed bool) string {
	if closed {
		return "closed"
	}
	line := resp
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	}
	fields := bytes.Fields(line)
	if len(fields) >= 2 {
		return string(fields[1])
	}
	return "malformed"
}

// certRequest builds a keep-alive GET carrying a client certificate in the
// X-Client-Cert header, the §V-C NGINX+OpenSSL integration under attack.
func certRequest(path string, cert []byte) []byte {
	return []byte("GET " + path + " HTTP/1.1\r\n" +
		"Host: chaos\r\n" +
		"X-Client-Cert: " + httpd.EncodeCertHeader(cert) + "\r\n" +
		"Connection: keep-alive\r\n\r\n")
}

// runHTTPD drives the hardened httpd build with valid traffic, the
// CVE-2009-2629-style "/../" URI underflow, malicious client
// certificates (CVE-2022-3786 analog, verified in a nested domain),
// fuzz-mutated requests, and injector-raised PKU faults inside the parser
// domain.
func runHTTPD(cfg Config, r *Report) error {
	rec := cfg.recorder()
	m, err := httpd.NewMaster(httpd.Config{
		Variant:           httpd.VariantSDRaD,
		Workers:           1,
		VerifyClientCerts: true,
		Files:             map[string]int{"/index.html": 512, "/about.html": 256},
		Seed:              cfg.Seed,
		Telemetry:         rec,
	})
	if err != nil {
		return err
	}
	defer m.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := m.Worker(0)
	lib := w.Library()
	as := w.Process().AddressSpace()
	a := &auditor{r: r, lib: lib, rec: rec}
	conn := w.NewConn()

	do := func(req []byte) ([]byte, bool) {
		resp, closed, err := conn.Do(req)
		if err != nil {
			r.failf("request failed: %v", err)
			return nil, true
		}
		if closed {
			conn = w.NewConn()
		}
		return resp, closed
	}
	onWorker := func(fn func(t *proc.Thread) error) {
		if err := w.Inspect(fn); err != nil {
			r.failf("inspect failed: %v", err)
		}
	}
	// postRewind audits the worker at the steady state right after an
	// absorbed rewind. The mapped-bytes class separates rewind types: a
	// parser-domain rewind leaves the parser heap unmapped while the
	// verifier stays resident, and a verifier-domain rewind the reverse —
	// the two states legitimately differ in mapped bytes.
	postRewind := func(label, class string) {
		onWorker(func(t *proc.Thread) error {
			a.audit(t, label)
			return nil
		})
		a.checkMappedStable(class, label, w.MappedBytes())
		// The worker must keep serving after the rewind.
		resp, closed := do(httpd.FormatRequest("/index.html", true))
		if status := httpStatus(resp, closed); status != "200" {
			r.failf("%s: worker unhealthy after rewind: %s", label, status)
		}
	}

	// Warm up every lazily created domain before taking any mapped-bytes
	// baseline: the first cert-bearing request creates the verifier
	// domain, and the first plain request the parser domain.
	goodCert := cryptolib.FormatCertificate("alice", "alice@example.com")
	if resp, closed := do(certRequest("/index.html", goodCert)); httpStatus(resp, closed) != "200" {
		return fmt.Errorf("chaos: cert warm-up request failed: %s", httpStatus(resp, closed))
	}

	vectors := []string{"get", "miss", "dotdot-attack", "bad-cert", "good-cert", "mutate", "inject-pku"}
	for i := 0; i < cfg.Ops; i++ {
		vector := vectors[rng.Intn(len(vectors))]
		label := fmt.Sprintf("op=%02d %s", i, vector)
		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()

		switch vector {
		case "get":
			path := "/index.html"
			if rng.Intn(2) == 0 {
				path = "/about.html"
			}
			resp, closed := do(httpd.FormatRequest(path, true))
			if status := httpStatus(resp, closed); status != "200" {
				r.failf("%s: %s returned %s", label, path, status)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s %s 200", label, path)
		case "miss":
			resp, closed := do(httpd.FormatRequest(fmt.Sprintf("/nope-%d.html", rng.Intn(16)), true))
			status := httpStatus(resp, closed)
			if status != "404" {
				r.failf("%s: want 404, got %s", label, status)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s %s", label, status)
		case "dotdot-attack":
			// CVE-2009-2629 analog: complex-URI normalization walks the
			// write pointer below the pool buffer. Must rewind.
			r.Injected++
			depth := 128 + rng.Intn(128)
			uri := "/" + strings.Repeat("../", depth) + "x"
			_, closed := do(httpd.FormatRequest(uri, true))
			if !closed {
				r.failf("%s: traversal attack left connection open", label)
			}
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			postRewind(label, "parser-rewind")
			r.event("%s depth=%d rewind", label, depth)
		case "bad-cert":
			// CVE-2022-3786 analog: punycode decode overflow inside the
			// X.509 verifier domain. Must rewind; the paper's NGINX
			// integration answers 400 over a then-closed connection.
			r.Injected++
			resp, closed := do(certRequest("/index.html", cryptolib.MaliciousCertificate()))
			status := httpStatus(resp, closed)
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsAbort(label, preForensics)
			postRewind(label, "verifier-rewind")
			// Re-establish the verifier domain so later steady states see
			// it resident again, keeping the other classes comparable.
			if resp, closed := do(certRequest("/index.html", goodCert)); httpStatus(resp, closed) != "200" {
				r.failf("%s: verifier did not recover: %s", label, httpStatus(resp, closed))
			}
			r.event("%s %s rewind", label, status)
		case "good-cert":
			resp, closed := do(certRequest("/index.html", goodCert))
			if status := httpStatus(resp, closed); status != "200" {
				r.failf("%s: valid certificate rejected: %s", label, status)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s 200", label)
		case "mutate":
			req := mutate(rng, httpd.FormatRequest("/index.html", true))
			resp, closed := do(req)
			delta := int(lib.Stats().Rewinds.Load() - preRewinds)
			r.Absorbed += delta
			r.Injected += delta // mutation-induced faults count as injected
			a.checkForensics(label, preForensics, delta)
			if delta > 0 {
				postRewind(label, "parser-rewind")
			}
			r.event("%s len=%d %s rewinds=%d", label, len(req), httpStatus(resp, closed), delta)
		case "inject-pku":
			// A hardened GET makes six gated in-domain accesses, so the
			// countdown must stay within that budget to guarantee firing.
			r.Injected++
			countdown := 1 + rng.Intn(4)
			onWorker(func(t *proc.Thread) error {
				armGated(lib, t, countdown, mem.CodePkuErr)
				return nil
			})
			preSeq := as.FaultSeq()
			_, closed := do(httpd.FormatRequest("/index.html", true))
			onWorker(func(t *proc.Thread) error {
				if t.CPU().FaultInjectorArmed() {
					t.CPU().SetFaultInjector(nil)
					r.failf("%s: injector did not fire within the request", label)
				}
				return nil
			})
			if !closed {
				r.failf("%s: injected fault left connection open", label)
			}
			a.checkFaultLogged(as, label, preSeq, mem.CodePkuErr, true)
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			postRewind(label, "parser-rewind")
			r.event("%s countdown=%d rewind", label, countdown)
		}

		if crashed, cause := w.Crashed(); crashed {
			return fmt.Errorf("chaos: worker process died at op %d: %v", i, cause)
		}
	}

	onWorker(func(t *proc.Thread) error {
		a.audit(t, "final")
		return nil
	})
	resp, closed := do(httpd.FormatRequest("/index.html", true))
	if status := httpStatus(resp, closed); status != "200" {
		r.failf("final: worker unhealthy: %s", status)
	}
	r.event("final rewinds=%d", lib.Stats().Rewinds.Load())
	return nil
}
