package chaos

import (
	"bytes"
	"fmt"
	"math/rand"

	"sdrad/internal/memcache"
	"sdrad/internal/proc"
)

// runBatch drives the hardened memcached build through pipelined request
// batches — the amortized guard-scope path — and injects the bset
// overflow at seeded positions inside a batch. The paper's rewind
// semantics must hold batch-wide: a trap anywhere in the batch rewinds
// exactly once, discards the WHOLE in-flight batch (writes earlier in
// the batch never reach the database), closes the batch's connection,
// and synthesizes exactly one forensics report. Clean batches must be
// bit-equivalent to sequential execution, which the campaign checks by
// replaying every pipeline against a shadow store.
func runBatch(cfg Config, r *Report) error {
	const maxBatch = 8
	rec := cfg.recorder()
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   1,
		HashPower: 10,
		MaxBatch:  maxBatch,
		Seed:      cfg.Seed,
		Telemetry: rec,
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	lib := s.Library()
	as := s.Process().AddressSpace()
	a := &auditor{r: r, lib: lib, rec: rec}
	conn := s.NewConn()

	onWorker := func(fn func(t *proc.Thread) error) {
		if err := conn.Inspect(fn); err != nil {
			r.failf("inspect failed: %v", err)
		}
	}
	auditSteady := func(label string) {
		onWorker(func(t *proc.Thread) error {
			a.audit(t, label)
			if err := s.Storage().AuditShards(t.CPU()); err != nil {
				r.failf("%s: shard audit: %v", label, err)
			}
			return nil
		})
		a.checkMappedStable("event-rewind", label, s.MappedBytes())
	}

	persistVal := []byte("survives-every-batch-rewind")
	if resp, closed, err := conn.Do(memcache.FormatSet("persist", persistVal, 7)); err != nil || closed || !bytes.HasPrefix(resp, []byte("STORED")) {
		return fmt.Errorf("chaos: persist set failed: %q closed=%v err=%v", resp, closed, err)
	}

	// shadow mirrors the store exactly: batches either apply in full
	// (clean) or not at all (trapped), so there is never taint.
	shadow := map[string][]byte{"persist": persistVal}
	checkKey := func(label, key string) {
		resp, closed, err := conn.Do(memcache.FormatGet(key))
		if err != nil || closed {
			r.failf("%s: probe get %s: closed=%v err=%v", label, key, closed, err)
			return
		}
		val, _, ok := memcache.ParseGetValue(resp)
		want, have := shadow[key]
		if ok != have {
			r.failf("%s: %s present=%v, shadow says %v", label, key, ok, have)
		}
		if ok && !bytes.Equal(val, want) {
			r.failf("%s: %s value %q, shadow %q", label, key, val, want)
		}
	}

	for i := 0; i < cfg.Ops; i++ {
		n := 2 + rng.Intn(maxBatch-1) // pipeline depth in [2, maxBatch]: one event, one batch
		atkPos := -1
		if rng.Intn(3) == 0 {
			atkPos = rng.Intn(n)
		}
		label := fmt.Sprintf("op=%02d batch n=%d atk=%d", i, n, atkPos)

		type planned struct {
			verb string
			key  string
			val  []byte
		}
		var plan []planned
		var reqs [][]byte
		for j := 0; j < n; j++ {
			if j == atkPos {
				plan = append(plan, planned{verb: "bset"})
				reqs = append(reqs, memcache.FormatBSet("atk", 1<<20, nil))
				continue
			}
			key := fmt.Sprintf("k%d", rng.Intn(8))
			switch rng.Intn(3) {
			case 0, 1:
				val := make([]byte, 8+rng.Intn(56))
				for k := range val {
					val[k] = byte('a' + rng.Intn(26))
				}
				plan = append(plan, planned{verb: "set", key: key, val: val})
				reqs = append(reqs, memcache.FormatSet(key, val, uint32(i)))
			case 2:
				plan = append(plan, planned{verb: "get", key: key})
				reqs = append(reqs, memcache.FormatGet(key))
			}
		}

		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()
		res := conn.DoPipeline(reqs)
		if len(res) != n {
			r.failf("%s: %d results for %d requests", label, len(res), n)
			continue
		}

		if atkPos >= 0 {
			// Trapped batch: one rewind, one forensics report, every item
			// reported closed, and NONE of the batch's writes visible.
			r.Injected++
			for j, pr := range res {
				if !pr.Closed {
					r.failf("%s: item %d not closed after batch rewind", label, j)
				}
			}
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			conn = s.NewConn()
			auditSteady(label)
			for _, p := range plan {
				if p.verb == "set" {
					checkKey(label+" discarded-write", p.key)
				}
			}
			checkKey(label, "persist")
			r.event("%s rewind", label)
		} else {
			// Clean batch: sequential semantics, then the shadow advances.
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			classes := make([]string, 0, n)
			for j, p := range plan {
				pr := res[j]
				if pr.Err != nil || pr.Closed {
					r.failf("%s: item %d (%s): closed=%v err=%v", label, j, p.verb, pr.Closed, pr.Err)
					continue
				}
				classes = append(classes, respClass(pr.Resp, pr.Closed))
				switch p.verb {
				case "set":
					if !bytes.HasPrefix(pr.Resp, []byte("STORED")) {
						r.failf("%s: set %s = %q", label, p.key, pr.Resp)
						continue
					}
					shadow[p.key] = p.val
				case "get":
					val, _, ok := memcache.ParseGetValue(pr.Resp)
					want, have := shadow[p.key]
					if ok != have {
						r.failf("%s: item %d get %s present=%v, shadow says %v", label, j, p.key, ok, have)
					}
					if ok && !bytes.Equal(val, want) {
						r.failf("%s: item %d get %s = %q, shadow %q", label, j, p.key, val, want)
					}
				}
			}
			r.event("%s %v", label, classes)
		}

		if crashed, cause := s.Crashed(); crashed {
			return fmt.Errorf("chaos: server process died at op %d: %v", i, cause)
		}
	}

	auditSteady("final")
	checkKey("final", "persist")
	r.event("final rewinds=%d", lib.Stats().Rewinds.Load())
	return nil
}
