package chaos

import (
	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/telemetry"
)

// auditor runs the post-rewind invariant audit: the monitor's own
// bookkeeping checks (core.Library.Audit) plus the engine-side checks
// that need before/after context — residual mappings of discarded
// domains, mapped-bytes stability across rewind cycles, and fault-log
// correlation. One auditor serves one campaign.
type auditor struct {
	r   *Report
	lib *core.Library
	// rec is the telemetry recorder attached to the audited library; every
	// absorbed rewind must leave exactly one forensics report whose
	// identity (si_code, fault address, failed domain) matches the oracle.
	rec *telemetry.Recorder

	// baselineMapped holds, per steady-state class, the address-space
	// mapped-bytes gauge captured the first time that class was reached;
	// later visits must match it, or discarded domains are leaking
	// mappings. Classes separate states that legitimately differ — e.g.
	// a parser-domain rewind and a verifier-domain rewind leave different
	// domains unmapped at audit time.
	baselineMapped map[string]int64
}

// audit runs the library audit on the calling thread and records every
// finding as a campaign failure. It must run on the audited thread, with
// the process quiescent (between requests).
func (a *auditor) audit(t *proc.Thread, label string) *core.AuditReport {
	rep := a.lib.Audit(t)
	a.r.Audits++
	for _, f := range rep.Findings {
		a.r.failf("%s: audit: %s", label, f)
	}
	return rep
}

// checkMappedStable compares the mapped-bytes gauge against the baseline
// captured the first time the given steady-state class was visited.
// Campaigns call it at equivalent steady states (right after an absorbed
// rewind, before the workload rebuilds its domain), where any drift means
// a rewind cycle leaked or lost a mapping.
func (a *auditor) checkMappedStable(class, label string, mapped int64) {
	if a.baselineMapped == nil {
		a.baselineMapped = map[string]int64{}
	}
	base, ok := a.baselineMapped[class]
	if !ok {
		a.baselineMapped[class] = mapped
		return
	}
	if mapped != base {
		a.r.failf("%s: mapped bytes drifted across %s rewind cycles: %d, baseline %d",
			label, class, mapped, base)
	}
}

// checkDiscarded verifies that a discarded domain's heap pages really
// left the address space: a rewind must either unmap the corrupted heap
// or park it — scrubbed — in the library's reuse pool. Any page still
// resident outside the pool is a residual mapping an attacker could
// revisit. (The library audit separately proves pooled regions were
// scrubbed when scrub-on-discard is on.)
func (a *auditor) checkDiscarded(as *mem.AddressSpace, label string, base mem.Addr, size uint64) {
	if base == 0 || size == 0 {
		return
	}
	for off := uint64(0); off < size; off += mem.PageSize {
		addr := base + mem.Addr(off)
		if _, _, ok := as.PageInfo(addr); !ok {
			continue
		}
		if a.lib.HeapPooled(addr) {
			continue
		}
		a.r.failf("%s: residual mapping: discarded heap page 0x%x still mapped",
			label, uint64(base)+off)
		return
	}
}

// checkFaultLogged verifies the fault log recorded exactly the injected
// fault since the preSeq snapshot: one new entry, with the expected cause
// and provenance. SIGABRT rewinds (canary smashes) raise no memory fault
// and are checked with wantFaults=0.
func (a *auditor) checkFaultLogged(as *mem.AddressSpace, label string, preSeq int64, wantCode mem.FaultCode, wantInjected bool) {
	seq := as.FaultSeq()
	if seq != preSeq+1 {
		a.r.failf("%s: fault log advanced by %d entries, want 1", label, seq-preSeq)
		return
	}
	recs := as.RecentFaults()
	if len(recs) == 0 {
		a.r.failf("%s: fault log empty after fault", label)
		return
	}
	last := recs[len(recs)-1]
	if last.Seq != seq {
		a.r.failf("%s: fault log tail seq %d, want %d", label, last.Seq, seq)
	}
	if last.Code != wantCode {
		a.r.failf("%s: logged fault code %v, want %v", label, last.Code, wantCode)
	}
	if last.Injected != wantInjected {
		a.r.failf("%s: logged fault injected=%v, want %v", label, last.Injected, wantInjected)
	}
}

// checkRewindDelta verifies the monitor's rewind counter moved by exactly
// want since the before snapshot, and accounts the delta in the report.
func (a *auditor) checkRewindDelta(label string, before int64, want int) int64 {
	now := a.lib.Stats().Rewinds.Load()
	delta := int(now - before)
	a.r.Absorbed += delta
	if delta != want {
		a.r.failf("%s: %d rewinds absorbed, want %d", label, delta, want)
	}
	return now
}

// forensicsPre snapshots the cumulative forensics-report counter before an
// operation. The counter never rewinds (unlike the retain ring, which
// evicts), so diffing it counts reports exactly even when older reports
// have been pushed out.
func (a *auditor) forensicsPre() int64 {
	if a.rec == nil {
		return 0
	}
	return a.rec.Forensics().Added()
}

// checkForensics verifies the recorder captured exactly want forensics
// reports since the pre snapshot. Benign operations pass want=0: a report
// with no rewind means the recorder is inventing incidents.
func (a *auditor) checkForensics(label string, pre int64, want int) {
	if a.rec == nil {
		return
	}
	if got := int(a.rec.Forensics().Added() - pre); got != want {
		a.r.failf("%s: %d forensics reports captured, want %d", label, got, want)
	}
}

// lastForensics fetches the newest forensics report, failing the campaign
// if the store is empty.
func (a *auditor) lastForensics(label string) (telemetry.RewindReport, bool) {
	rep, ok := a.rec.Forensics().Last()
	if !ok {
		a.r.failf("%s: forensics store empty after rewind", label)
	}
	return rep, ok
}

// checkForensicsExit verifies an absorbed rewind produced exactly one
// forensics report and that the report's identity matches the abnormal
// exit the caller observed: same si_code, fault address, and failing
// domain. Used by the campaigns that see the *core.AbnormalExit directly.
func (a *auditor) checkForensicsExit(label string, pre int64, abn *core.AbnormalExit) {
	if a.rec == nil {
		return
	}
	a.checkForensics(label, pre, 1)
	if abn == nil {
		return
	}
	rep, ok := a.lastForensics(label)
	if !ok {
		return
	}
	if rep.SiCode != abn.Code {
		a.r.failf("%s: forensics si_code %d (%s), oracle %d", label, rep.SiCode, rep.SiCodeName, abn.Code)
	}
	if rep.Addr != abn.Addr {
		a.r.failf("%s: forensics fault address 0x%x, oracle 0x%x", label, rep.Addr, abn.Addr)
	}
	if rep.FailedUDI != int(abn.FailedUDI) {
		a.r.failf("%s: forensics failed domain %d, oracle %d", label, rep.FailedUDI, abn.FailedUDI)
	}
	if rep.SignalName != abn.Signal.String() {
		a.r.failf("%s: forensics signal %s, oracle %v", label, rep.SignalName, abn.Signal)
	}
}

// checkForensicsFault verifies a workload rewind — where the server
// absorbs the abnormal exit internally and no *core.AbnormalExit reaches
// the campaign — produced exactly one forensics report agreeing with the
// MMU fault-log tail: same si_code, fault address, and injection
// provenance.
func (a *auditor) checkForensicsFault(as *mem.AddressSpace, label string, pre int64) {
	if a.rec == nil {
		return
	}
	a.checkForensics(label, pre, 1)
	rep, ok := a.lastForensics(label)
	if !ok {
		return
	}
	recs := as.RecentFaults()
	if len(recs) == 0 {
		a.r.failf("%s: fault log empty, cannot correlate forensics report", label)
		return
	}
	f := recs[len(recs)-1]
	if rep.SiCode != int(f.Code) {
		a.r.failf("%s: forensics si_code %d (%s), fault log %v", label, rep.SiCode, rep.SiCodeName, f.Code)
	}
	if rep.Addr != uint64(f.Addr) {
		a.r.failf("%s: forensics fault address 0x%x, fault log 0x%x", label, rep.Addr, uint64(f.Addr))
	}
	if rep.Injected != f.Injected {
		a.r.failf("%s: forensics injected=%v, fault log %v", label, rep.Injected, f.Injected)
	}
}

// checkForensicsAbort verifies a canary-detected workload rewind produced
// one report whose oracle is the stack protector, not the MMU.
func (a *auditor) checkForensicsAbort(label string, pre int64) {
	if a.rec == nil {
		return
	}
	a.checkForensics(label, pre, 1)
	rep, ok := a.lastForensics(label)
	if !ok {
		return
	}
	if rep.SignalName != "SIGABRT" || rep.SiCodeName != "STACK_CHK" {
		a.r.failf("%s: forensics oracle %s/%s, want SIGABRT/STACK_CHK",
			label, rep.SignalName, rep.SiCodeName)
	}
}
