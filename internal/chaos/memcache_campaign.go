package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/memcache"
	"sdrad/internal/proc"
)

// respClass compresses a workload response into a deterministic schedule
// token: the first protocol token for open connections, "closed" for
// dropped ones.
func respClass(resp []byte, closed bool) string {
	if closed {
		return "closed"
	}
	if i := bytes.IndexAny(resp, " \r\n"); i > 0 {
		return string(resp[:i])
	}
	if len(resp) == 0 {
		return "empty"
	}
	return string(resp)
}

// runMemcache drives the hardened memcached build with a seeded mix of
// valid traffic, the CVE-2011-4971 binary-set overflow, fuzz-mutated
// protocol bytes, injector-raised PKU faults mid-request, and injected
// allocation failures. After every absorbed rewind it audits the monitor
// on the serving thread and proves the cache survived.
func runMemcache(cfg Config, r *Report) error {
	rec := cfg.recorder()
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   1,
		HashPower: 10,
		Seed:      cfg.Seed,
		Telemetry: rec,
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	lib := s.Library()
	as := s.Process().AddressSpace()
	a := &auditor{r: r, lib: lib, rec: rec}
	conn := s.NewConn()

	do := func(req []byte) ([]byte, bool) {
		resp, closed, err := conn.Do(req)
		if err != nil {
			r.failf("request failed: %v", err)
			return nil, true
		}
		if closed {
			conn = s.NewConn()
		}
		return resp, closed
	}

	// A key stored before the chaos starts; it must survive every rewind.
	persistVal := []byte("survives-every-rewind")
	if resp, _ := do(memcache.FormatSet("persist", persistVal, 7)); !bytes.HasPrefix(resp, []byte("STORED")) {
		return fmt.Errorf("chaos: persist set failed: %q", resp)
	}

	// onWorker runs fn on the serving thread, between requests.
	onWorker := func(fn func(t *proc.Thread) error) {
		if err := conn.Inspect(fn); err != nil {
			r.failf("inspect failed: %v", err)
		}
	}
	postRewind := func(label string) {
		onWorker(func(t *proc.Thread) error {
			a.audit(t, label)
			if err := s.Storage().AuditShards(t.CPU()); err != nil {
				r.failf("%s: shard audit: %v", label, err)
			}
			return nil
		})
		// Every memcache rewind discards the same event domain, so all
		// post-rewind steady states share one mapped-bytes class.
		a.checkMappedStable("event-rewind", label, s.MappedBytes())
		resp, closed := do(memcache.FormatGet("persist"))
		val, _, ok := memcache.ParseGetValue(resp)
		if closed || !ok || !bytes.Equal(val, persistVal) {
			r.failf("%s: persisted key damaged after rewind: closed=%v resp=%q", label, closed, resp)
		}
	}

	vectors := []string{"set", "get", "delete", "mutate", "bset", "inject-pku", "inject-oom"}
	// shadow mirrors what the cache must hold; tainted marks keys whose
	// server state is unknowable (a mutated or faulted request may or may
	// not have reached the store). A taint clears on the next definite
	// observation of the key.
	shadow := map[string][]byte{}
	tainted := map[string]bool{}
	for i := 0; i < cfg.Ops; i++ {
		vector := vectors[rng.Intn(len(vectors))]
		key := fmt.Sprintf("k%d", rng.Intn(8))
		label := fmt.Sprintf("op=%02d %s", i, vector)
		preRewinds := lib.Stats().Rewinds.Load()
		preForensics := a.forensicsPre()

		switch vector {
		case "set":
			val := make([]byte, 8+rng.Intn(56))
			for j := range val {
				val[j] = byte('a' + rng.Intn(26))
			}
			resp, closed := do(memcache.FormatSet(key, val, uint32(i)))
			if !closed && bytes.HasPrefix(resp, []byte("STORED")) {
				shadow[key] = val
				delete(tainted, key)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s %s len=%d %s", label, key, len(val), respClass(resp, closed))
		case "get":
			resp, closed := do(memcache.FormatGet(key))
			val, _, ok := memcache.ParseGetValue(resp)
			if tainted[key] {
				// Unknown state: resynchronize the shadow from what the
				// server actually holds and restore the oracle.
				if !closed {
					if ok {
						shadow[key] = append([]byte(nil), val...)
					} else {
						delete(shadow, key)
					}
					delete(tainted, key)
				}
			} else {
				want, have := shadow[key]
				if !closed && ok != have {
					r.failf("%s: %s present=%v, shadow says %v", label, key, ok, have)
				}
				if !closed && ok && !bytes.Equal(val, want) {
					r.failf("%s: %s value %q, shadow %q", label, key, val, want)
				}
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s %s hit=%v", label, key, ok)
		case "delete":
			resp, closed := do(memcache.FormatDelete(key))
			if !closed {
				// DELETED and NOT_FOUND both leave the key absent.
				delete(shadow, key)
				delete(tainted, key)
			}
			a.checkRewindDelta(label, preRewinds, 0)
			a.checkForensics(label, preForensics, 0)
			r.event("%s %s %s", label, key, respClass(resp, closed))
		case "mutate":
			base := memcache.FormatSet(key, []byte("mutation-fodder"), 1)
			if rng.Intn(2) == 0 {
				base = memcache.FormatGet(key)
			}
			// A mutated request may or may not reach the store (it can
			// fail outright, store garbage, or morph into another
			// command); taint the key rather than guess.
			tainted[key] = true
			req := mutate(rng, base)
			resp, closed := do(req)
			delta := int(lib.Stats().Rewinds.Load() - preRewinds)
			r.Absorbed += delta
			r.Injected += delta // mutation-induced faults count as injected
			a.checkForensics(label, preForensics, delta)
			if delta > 0 {
				postRewind(label)
			}
			r.event("%s len=%d %s rewinds=%d", label, len(req), respClass(resp, closed), delta)
		case "bset":
			// CVE-2011-4971 analog: a binary set whose claimed body length
			// overflows the staging buffer. Must always rewind.
			r.Injected++
			resp, closed := do(memcache.FormatBSet("atk", 1<<20, nil))
			if !closed {
				r.failf("%s: overflow attack left connection open: %q", label, resp)
			}
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			postRewind(label)
			r.event("%s rewind", label)
		case "inject-pku":
			// Arm a gated one-shot injector on the serving thread; the next
			// request trips it inside the event domain.
			// A hardened set makes five gated in-domain accesses, so the
			// countdown must stay within that budget to guarantee firing.
			r.Injected++
			countdown := 1 + rng.Intn(4)
			onWorker(func(t *proc.Thread) error {
				armGated(lib, t, countdown, mem.CodePkuErr)
				return nil
			})
			preSeq := as.FaultSeq()
			resp, closed := do(memcache.FormatSet(key, []byte("doomed-request"), 2))
			tainted[key] = true // outcome of the faulted set is undefined
			onWorker(func(t *proc.Thread) error {
				if t.CPU().FaultInjectorArmed() {
					t.CPU().SetFaultInjector(nil)
					r.failf("%s: injector did not fire within the request", label)
				}
				return nil
			})
			if !closed {
				r.failf("%s: injected fault left connection open: %q", label, resp)
			}
			a.checkFaultLogged(as, label, preSeq, mem.CodePkuErr, true)
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			postRewind(label)
			r.event("%s countdown=%d rewind", label, countdown)
		case "inject-oom":
			// Allocation failure under live load. A forced rewind first
			// guarantees the next request rebuilds the event domain, so the
			// hook deterministically fails that Malloc: the server must
			// degrade to a clean error — no rewind, no crash — and recover
			// once the hook is gone.
			r.Injected++
			if _, closed := do(memcache.FormatBSet("atk", 1<<20, nil)); !closed {
				r.failf("%s: overflow attack left connection open", label)
			}
			a.checkRewindDelta(label, preRewinds, 1)
			a.checkForensicsFault(as, label, preForensics)
			// Audit the rewind without issuing a request: a health probe
			// here would rebuild the event domain and defuse the hook
			// before the starved request arrives.
			onWorker(func(t *proc.Thread) error {
				a.audit(t, label)
				return nil
			})
			a.checkMappedStable("event-rewind", label, s.MappedBytes())
			fired := false
			lib.SetAllocFault(func(udi core.UDI, size uint64) error {
				if udi == core.RootUDI {
					return nil // root allocs (conn buffers) are not the target
				}
				fired = true
				return errInjectedOOM
			})
			oomRewinds := lib.Stats().Rewinds.Load()
			oomForensics := a.forensicsPre()
			_, _, oomErr := conn.Do(memcache.FormatSet(key, []byte("starved-request"), 3))
			tainted[key] = true
			lib.SetAllocFault(nil)
			if !fired {
				r.failf("%s: allocation-fault hook never fired", label)
			}
			if !errors.Is(oomErr, core.ErrHeapExhausted) {
				r.failf("%s: starved request returned %v, want heap exhaustion", label, oomErr)
			}
			a.checkRewindDelta(label, oomRewinds, 0)
			a.checkForensics(label, oomForensics, 0)
			r.event("%s fired=%v heap-exhausted=%v", label, fired, oomErr != nil)
			resp, closed := do(memcache.FormatSet(key, []byte("recovered"), 4))
			if closed || !bytes.HasPrefix(resp, []byte("STORED")) {
				r.failf("%s: server did not recover from OOM: closed=%v resp=%q", label, closed, resp)
			} else {
				shadow[key] = []byte("recovered")
				delete(tainted, key)
			}
		}

		if crashed, cause := s.Crashed(); crashed {
			return fmt.Errorf("chaos: server process died at op %d: %v", i, cause)
		}
	}

	// Final steady-state audit and cache-survival proof.
	onWorker(func(t *proc.Thread) error {
		a.audit(t, "final")
		if err := s.Storage().AuditShards(t.CPU()); err != nil {
			r.failf("final: shard audit: %v", err)
		}
		return nil
	})
	resp, closed := do(memcache.FormatGet("persist"))
	val, _, ok := memcache.ParseGetValue(resp)
	if closed || !ok || !bytes.Equal(val, persistVal) {
		r.failf("final: persisted key damaged: closed=%v resp=%q", closed, resp)
	}
	r.event("final rewinds=%d", lib.Stats().Rewinds.Load())
	return nil
}
