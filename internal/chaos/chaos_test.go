package chaos

import (
	"strings"
	"testing"
)

// TestChaosSmoke runs every campaign with a fixed seed and verifies the
// acceptance contract: the required fault classes were exercised, every
// injected fault was absorbed, every audit passed, and a second run with
// the same seed reproduces the identical fault schedule.
func TestChaosSmoke(t *testing.T) {
	const seed = 0xC0FFEE
	ops := 24
	if testing.Short() {
		ops = 12
	}
	cfg := Config{Seed: seed, Ops: ops}

	reports, err := RunSelected(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Report{}
	for _, r := range reports {
		byName[r.Campaign] = r
		t.Log(r.Summary())
		if !r.Ok() {
			t.Errorf("campaign %s failed:\n  %s", r.Campaign, strings.Join(r.Failures, "\n  "))
		}
		if r.Audits == 0 && r.Campaign != "alloc" {
			t.Errorf("campaign %s ran no invariant audits", r.Campaign)
		}
		if r.Injected != r.Absorbed {
			t.Errorf("campaign %s: injected %d, absorbed %d", r.Campaign, r.Injected, r.Absorbed)
		}
	}
	// The required fault classes: PKU violations, canary smashes, and
	// protocol mutation (memcache and httpd both carry mutate vectors)
	// must all have injected and absorbed at least one fault.
	for _, name := range []string{"pku", "canary", "oob", "alloc", "memcache", "httpd", "crypto"} {
		r := byName[name]
		if r == nil {
			t.Fatalf("campaign %s did not run", name)
		}
		if r.Injected == 0 {
			t.Errorf("campaign %s injected no faults with seed %d", name, seed)
		}
	}

	// Same seed, same schedule: determinism is the reproducibility
	// guarantee the engine prints seeds for.
	again, err := RunSelected(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		first := reports[i]
		if r.Campaign != first.Campaign {
			t.Fatalf("campaign order changed: %s vs %s", r.Campaign, first.Campaign)
		}
		if r.ScheduleHash() != first.ScheduleHash() {
			t.Errorf("campaign %s: schedule hash %016x != %016x on rerun",
				r.Campaign, r.ScheduleHash(), first.ScheduleHash())
			for j := range r.Schedule {
				if j < len(first.Schedule) && r.Schedule[j] != first.Schedule[j] {
					t.Errorf("first divergence at line %d:\n  run1: %s\n  run2: %s",
						j, first.Schedule[j], r.Schedule[j])
					break
				}
			}
		}
	}
}

// TestRunSingleCampaign runs one campaign by name.
func TestRunSingleCampaign(t *testing.T) {
	r, err := Run("pku", Config{Seed: 7, Ops: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("pku campaign failed: %v", r.Failures)
	}
	if r.Campaign != "pku" || r.Seed != 7 || r.Ops != 8 {
		t.Errorf("report header mismatch: %+v", r)
	}
}

// TestRunUnknownCampaign verifies name validation.
func TestRunUnknownCampaign(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown campaign accepted")
	}
	if _, err := RunSelected([]string{"pku", "nope"}, Config{}); err == nil {
		t.Error("unknown campaign in selection accepted")
	}
}

// TestSelectionOrder verifies selected campaigns run in registry order
// regardless of the order given, keeping schedules comparable.
func TestSelectionOrder(t *testing.T) {
	reports, err := RunSelected([]string{"canary", "pku"}, Config{Seed: 3, Ops: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Campaign != "pku" || reports[1].Campaign != "canary" {
		got := []string{}
		for _, r := range reports {
			got = append(got, r.Campaign)
		}
		t.Errorf("selection order = %v, want [pku canary]", got)
	}
}

// TestDifferentSeedsDiverge is a sanity check that the schedule hash
// actually depends on the seed.
func TestDifferentSeedsDiverge(t *testing.T) {
	a, err := Run("pku", Config{Seed: 1, Ops: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("pku", Config{Seed: 2, Ops: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleHash() == b.ScheduleHash() {
		t.Error("different seeds produced identical schedules")
	}
}
