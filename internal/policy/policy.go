// Package policy implements the "Unlimited Lives" resilience-policy
// layer for the SDRaD reference monitor: the component that *decides*
// what a rewind means. The monitor's mechanism — discard the domain,
// unwind to the recovery point — treats every rewind identically and at
// full cost; Gülmez et al.'s follow-up argues that secure in-process
// rollback only becomes a resilience story once a policy rate-limits
// repeated rewinds and escalates persistent offenders.
//
// The engine tracks per-UDI rewind rates over a sliding window and walks
// each domain up an escalation ladder:
//
//	Healthy ──rewind burst──▶ Backoff ──keeps faulting──▶ Quarantined
//	   ▲                        │  (re-init delayed,          │
//	   │   window drains        │   exponential)              │ cool-down;
//	   └────────────────────────┘                             │ re-init refused,
//	                 probation readmit ◀──────────────────────┘ degraded path
//	                                          │
//	                         still faulting   ▼
//	                                       Shedding (re-init refused for good)
//
// The monitor consults OnRewind after every absorbed rewind (the
// decision is recorded in the rewind's forensics report) and Admit
// before re-initializing a domain; a denied Admit surfaces to the
// application as core.ErrDomainQuarantined, and each server chooses its
// degraded response — memcached serves misses, httpd answers 503 with
// Retry-After, the crypto wrapper fails closed.
//
// The package imports only the standard library and internal/telemetry,
// mirroring the dependency discipline of the telemetry subsystem, so
// every layer (and the chaos engine) can hold an engine.
package policy

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"sdrad/internal/telemetry"
)

// State is a domain's position on the escalation ladder.
type State int

// Ladder states.
const (
	// StateHealthy: rewinds are rare; re-init is immediate.
	StateHealthy State = iota
	// StateBackoff: the rewind rate crossed BackoffThreshold; re-init is
	// delayed by an exponentially growing hold-off.
	StateBackoff
	// StateQuarantined: the rate crossed QuarantineThreshold; re-init is
	// refused for a cool-down period and the application should route
	// requests to its degraded path.
	StateQuarantined
	// StateShedding: the rate crossed ShedThreshold; re-init is refused
	// permanently and the application should shed the domain's load.
	StateShedding
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateBackoff:
		return "backoff"
	case StateQuarantined:
		return "quarantined"
	case StateShedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// Action is the policy's verdict for one consultation.
type Action int

// Decision actions.
const (
	// ActionNone: admission granted with no state change.
	ActionNone Action = iota
	// ActionRewind: the rewind is within budget; recover normally.
	ActionRewind
	// ActionBackoff: the rewind tripped (or extended) the backoff
	// hold-off; re-init is delayed.
	ActionBackoff
	// ActionQuarantine: the rewind pushed the domain into quarantine.
	ActionQuarantine
	// ActionShed: the domain is shedding load; re-init refused for good.
	ActionShed
	// ActionDeny: admission refused (backoff hold-off or quarantine
	// cool-down still running); RetryAfterNs says when to retry.
	ActionDeny
	// ActionReadmit: a quarantine cool-down or backoff hold-off expired
	// and the domain is readmitted (on probation after quarantine).
	ActionReadmit
)

func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionRewind:
		return "rewind"
	case ActionBackoff:
		return "backoff"
	case ActionQuarantine:
		return "quarantine"
	case ActionShed:
		return "shed"
	case ActionDeny:
		return "deny"
	case ActionReadmit:
		return "readmit"
	default:
		return "unknown"
	}
}

// Decision is the outcome of one policy consultation.
type Decision struct {
	UDI    int
	State  State
	Action Action
	// WindowCount is the number of rewinds inside the sliding window at
	// decision time (including the one being decided, for OnRewind).
	WindowCount int
	// RetryAfterNs is how long admission stays denied (Deny decisions;
	// 0 for permanent shedding).
	RetryAfterNs int64
	// TimeNs is the engine-clock timestamp of the decision.
	TimeNs int64
}

// Allowed reports whether the consulted operation may proceed.
func (d Decision) Allowed() bool {
	return d.Action != ActionDeny && d.Action != ActionShed
}

// Config parameterizes the engine. The zero value gets defaults suited
// to the simulated servers.
type Config struct {
	// Window is the sliding-window width for rewind-rate tracking
	// (default 1s).
	Window time.Duration
	// BackoffThreshold is the windowed rewind count that moves a domain
	// to Backoff (default 3).
	BackoffThreshold int
	// QuarantineThreshold moves it to Quarantined (default 6).
	QuarantineThreshold int
	// ShedThreshold moves it to Shedding (default 12; set negative to
	// disable shedding entirely).
	ShedThreshold int
	// BackoffBase is the first re-init hold-off; each further backoff
	// escalation doubles it up to BackoffMax (defaults 1ms / 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Cooldown is the quarantine duration (default 1s).
	Cooldown time.Duration
	// Clock supplies monotonic nanoseconds. Nil uses the wall clock;
	// chaos campaigns install a ManualClock so the ladder walk is a
	// deterministic function of the schedule.
	Clock func() int64
}

func (c *Config) setDefaults() {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.BackoffThreshold <= 0 {
		c.BackoffThreshold = 3
	}
	if c.QuarantineThreshold <= 0 {
		c.QuarantineThreshold = 6
	}
	if c.ShedThreshold == 0 {
		c.ShedThreshold = 12
	}
	if c.ShedThreshold < 0 {
		c.ShedThreshold = 0 // disabled
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 100 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
}

// domainState is one UDI's ladder position and rate-tracking window.
type domainState struct {
	state State
	// window holds engine-clock timestamps of rewinds not older than
	// Config.Window, oldest first.
	window []int64
	// backoffStep counts backoff escalations since the last return to
	// Healthy; the hold-off is BackoffBase<<(step-1) capped at
	// BackoffMax.
	backoffStep int
	// deniedUntil is the engine-clock time admission reopens (Backoff
	// and Quarantined states).
	deniedUntil  int64
	totalRewinds int64
	escalations  int64
}

// Policy is the pluggable decision surface the reference monitor
// consults: OnRewind after every absorbed rewind, Admit before every
// domain (re-)initialization, Snapshot for dumps and campaign
// assertions. *Engine is the stock sliding-window/escalation-ladder
// implementation; alternative policies satisfy the same interface.
type Policy interface {
	OnRewind(udi int) Decision
	Admit(udi int) Decision
	Snapshot() []DomainSnapshot
}

var _ Policy = (*Engine)(nil)

// Engine is the resilience-policy engine. One engine typically serves
// one library (process); keying by UDI quarantines the vulnerable
// component — every thread's instance of it — which matches the paper's
// framing of a UDI as one isolated software component. A nil *Engine is
// a valid no-op: every consultation allows and reports Healthy.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	domains map[int]*domainState
	// lastNow clamps the clock monotonically: a skewed or rewound clock
	// source can delay ladder transitions but never un-order decisions.
	lastNow int64

	// Telemetry (nil without AttachTelemetry).
	rec          *telemetry.Recorder
	mState       *telemetry.GaugeVec   // by udi
	mEscalations *telemetry.CounterVec // by action
	mDenials     *telemetry.Counter
	mReadmits    *telemetry.Counter
}

// New builds an engine.
func New(cfg Config) *Engine {
	cfg.setDefaults()
	return &Engine{cfg: cfg, domains: make(map[int]*domainState)}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// AttachTelemetry registers the policy metric families and emits a
// flight-recorder event per escalation. Safe to share one recorder
// across engines: families dedup by name in the registry.
func (e *Engine) AttachTelemetry(rec *telemetry.Recorder) {
	if e == nil || rec == nil {
		return
	}
	reg := rec.Registry()
	e.mu.Lock()
	e.rec = rec
	e.mState = reg.GaugeVec("sdrad_policy_state",
		"Resilience-policy ladder state per UDI (0 healthy, 1 backoff, 2 quarantined, 3 shedding).", "udi")
	e.mEscalations = reg.CounterVec("sdrad_policy_escalations_total",
		"Resilience-policy ladder escalations, by action taken.", "action")
	e.mDenials = reg.Counter("sdrad_policy_denials_total",
		"Domain re-initializations refused by the resilience policy.")
	e.mReadmits = reg.Counter("sdrad_policy_readmissions_total",
		"Domains readmitted after a backoff hold-off or quarantine cool-down expired.")
	e.mu.Unlock()
}

// now reads the engine clock, clamped monotonic under e.mu.
func (e *Engine) now() int64 {
	var n int64
	if e.cfg.Clock != nil {
		n = e.cfg.Clock()
	} else {
		n = time.Now().UnixNano()
	}
	if n < e.lastNow {
		n = e.lastNow
	}
	e.lastNow = n
	return n
}

// pruneWindow drops window entries older than Config.Window.
func (e *Engine) pruneWindow(ds *domainState, now int64) {
	cut := now - int64(e.cfg.Window)
	i := 0
	for i < len(ds.window) && ds.window[i] <= cut {
		i++
	}
	if i > 0 {
		ds.window = append(ds.window[:0], ds.window[i:]...)
	}
}

// state returns (creating if needed) the ladder state for udi.
func (e *Engine) state(udi int) *domainState {
	ds := e.domains[udi]
	if ds == nil {
		ds = &domainState{}
		e.domains[udi] = ds
	}
	return ds
}

// OnRewind is the monitor's post-rewind consultation: it records the
// rewind in udi's sliding window and escalates the ladder when a
// threshold is crossed. Nil-engine safe (no policy configured).
func (e *Engine) OnRewind(udi int) Decision {
	if e == nil {
		return Decision{UDI: udi, Action: ActionRewind}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	ds := e.state(udi)
	e.pruneWindow(ds, now)
	ds.window = append(ds.window, now)
	ds.totalRewinds++
	n := len(ds.window)

	dec := Decision{UDI: udi, WindowCount: n, TimeNs: now}
	switch {
	case ds.state == StateShedding:
		dec.Action = ActionShed
	case e.cfg.ShedThreshold > 0 && n >= e.cfg.ShedThreshold:
		ds.state = StateShedding
		ds.deniedUntil = 0
		ds.escalations++
		dec.Action = ActionShed
	case ds.state == StateQuarantined, n >= e.cfg.QuarantineThreshold:
		// A rewind during quarantine (degraded paths may still guard
		// other work) restarts the cool-down.
		if ds.state != StateQuarantined {
			ds.escalations++
		}
		ds.state = StateQuarantined
		ds.deniedUntil = now + int64(e.cfg.Cooldown)
		dec.Action = ActionQuarantine
		dec.RetryAfterNs = int64(e.cfg.Cooldown)
	case n >= e.cfg.BackoffThreshold:
		if ds.state != StateBackoff {
			ds.escalations++
		}
		ds.state = StateBackoff
		ds.backoffStep++
		hold := e.backoffHold(ds.backoffStep)
		ds.deniedUntil = now + hold
		dec.Action = ActionBackoff
		dec.RetryAfterNs = hold
	default:
		dec.Action = ActionRewind
	}
	dec.State = ds.state
	// Metrics only: the monitor emits the flight-recorder event for
	// rewind-side decisions with the victim thread attached.
	e.recordLocked(dec, false)
	return dec
}

// PressureReporter is the optional load-pressure side channel: the
// scheduler calls OnPressure when a worker's batch controller has been
// pinned at the AIMD floor by a hot rewind window for a full window —
// batching has already shrunk the blast radius to single requests and
// the domain is STILL rewinding, so admission should start backing off
// before the raw rewind count crosses BackoffThreshold on its own.
// *Engine implements it; alternative policies may.
type PressureReporter interface {
	OnPressure(udi int) Decision
}

var _ PressureReporter = (*Engine)(nil)

// OnPressure records a sustained-pressure signal against udi: a Healthy
// or Backoff domain (re-)enters Backoff with the next exponential
// hold-off; Quarantined and Shedding domains already dominate the
// signal and are left untouched. Nil-engine safe.
func (e *Engine) OnPressure(udi int) Decision {
	if e == nil {
		return Decision{UDI: udi, Action: ActionNone}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	ds := e.state(udi)
	e.pruneWindow(ds, now)
	dec := Decision{UDI: udi, WindowCount: len(ds.window), TimeNs: now}
	switch ds.state {
	case StateQuarantined, StateShedding:
		dec.Action = ActionNone
	default:
		if ds.state != StateBackoff {
			ds.escalations++
		}
		ds.state = StateBackoff
		ds.backoffStep++
		hold := e.backoffHold(ds.backoffStep)
		ds.deniedUntil = now + hold
		dec.Action = ActionBackoff
		dec.RetryAfterNs = hold
	}
	dec.State = ds.state
	e.recordLocked(dec, false)
	return dec
}

// backoffHold computes the exponential hold-off for escalation step.
func (e *Engine) backoffHold(step int) int64 {
	hold := int64(e.cfg.BackoffBase)
	max := int64(e.cfg.BackoffMax)
	for i := 1; i < step; i++ {
		hold <<= 1
		if hold >= max || hold <= 0 {
			return max
		}
	}
	if hold > max {
		return max
	}
	return hold
}

// Admit is the pre-(re)initialization consultation: the monitor calls it
// before re-creating a domain, and degraded paths call it to learn the
// current verdict. Expired hold-offs are ticked here — a quarantined
// domain whose cool-down has run out is readmitted on probation (it
// re-enters Backoff, keeping its window, rather than jumping straight to
// Healthy). Nil-engine safe.
func (e *Engine) Admit(udi int) Decision {
	if e == nil {
		return Decision{UDI: udi, Action: ActionNone}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	ds := e.domains[udi]
	if ds == nil {
		return Decision{UDI: udi, Action: ActionNone, TimeNs: now}
	}
	e.pruneWindow(ds, now)
	dec := Decision{UDI: udi, WindowCount: len(ds.window), TimeNs: now}
	switch ds.state {
	case StateShedding:
		// Permanent denial: RetryAfterNs stays 0.
		dec.Action = ActionDeny
	case StateQuarantined:
		if now >= ds.deniedUntil {
			// Probation: back to Backoff with the hold-off already
			// served; the next rewind escalates from there.
			ds.state = StateBackoff
			ds.deniedUntil = now
			dec.Action = ActionReadmit
		} else {
			dec.Action = ActionDeny
			dec.RetryAfterNs = ds.deniedUntil - now
		}
	case StateBackoff:
		if now >= ds.deniedUntil {
			if len(ds.window) == 0 {
				// The window drained during the hold-off: fully healthy.
				ds.state = StateHealthy
				ds.backoffStep = 0
			}
			dec.Action = ActionReadmit
		} else {
			dec.Action = ActionDeny
			dec.RetryAfterNs = ds.deniedUntil - now
		}
	default:
		dec.Action = ActionNone
	}
	dec.State = ds.state
	e.recordLocked(dec, true)
	return dec
}

// recordLocked mirrors a decision into the attached telemetry (caller
// holds e.mu). flight additionally writes a flight-recorder event for
// state-changing decisions; rewind-side callers pass false because the
// monitor records the event itself, with the victim thread attached.
func (e *Engine) recordLocked(dec Decision, flight bool) {
	if e.rec == nil {
		return
	}
	e.mState.With(strconv.Itoa(dec.UDI)).Set(int64(dec.State))
	switch dec.Action {
	case ActionBackoff, ActionQuarantine, ActionShed:
		e.mEscalations.With(dec.Action.String()).Add(1)
	case ActionDeny:
		e.mDenials.Add(1)
	case ActionReadmit:
		e.mReadmits.Add(1)
	default:
		return
	}
	if flight && dec.Action == ActionReadmit {
		e.rec.RecordPolicy(0, dec.UDI, int(dec.State), int(dec.Action), uint64(dec.WindowCount))
	}
}

// DomainSnapshot is one UDI's policy state for dumps and assertions.
type DomainSnapshot struct {
	UDI          int    `json:"udi"`
	State        string `json:"state"`
	WindowCount  int    `json:"window_count"`
	BackoffStep  int    `json:"backoff_step"`
	DeniedForNs  int64  `json:"denied_for_ns"`
	TotalRewinds int64  `json:"total_rewinds"`
	Escalations  int64  `json:"escalations"`
}

// Snapshot returns the per-UDI policy state, sorted by UDI. Nil-engine
// safe (returns nil).
func (e *Engine) Snapshot() []DomainSnapshot {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]DomainSnapshot, 0, len(e.domains))
	for udi, ds := range e.domains {
		e.pruneWindow(ds, now)
		snap := DomainSnapshot{
			UDI:          udi,
			State:        ds.state.String(),
			WindowCount:  len(ds.window),
			BackoffStep:  ds.backoffStep,
			TotalRewinds: ds.totalRewinds,
			Escalations:  ds.escalations,
		}
		if ds.state == StateBackoff || ds.state == StateQuarantined {
			if d := ds.deniedUntil - now; d > 0 {
				snap.DeniedForNs = d
			}
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UDI < out[j].UDI })
	return out
}

// ManualClock is a hand-advanced clock for deterministic campaigns and
// tests. The zero value starts at time 1 (0 is reserved so "unset"
// timestamps stay distinguishable).
type ManualClock struct {
	mu sync.Mutex
	ns int64
}

// Now returns the current manual time; pass (&mc).Now as Config.Clock.
func (m *ManualClock) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ns == 0 {
		m.ns = 1
	}
	return m.ns
}

// Advance moves the clock forward by d.
func (m *ManualClock) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ns == 0 {
		m.ns = 1
	}
	m.ns += int64(d)
}

// Set jumps the clock to ns (backwards jumps are clamped by the engine).
func (m *ManualClock) Set(ns int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ns = ns
}
