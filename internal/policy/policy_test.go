package policy

import (
	"sync"
	"testing"
	"time"

	"sdrad/internal/telemetry"
)

// testConfig is a compact ladder used throughout: 3 rewinds in a 100ms
// window → backoff, 5 → quarantine, 8 → shed; 10ms base hold-off capped
// at 40ms; 50ms cool-down.
func testConfig(clk *ManualClock) Config {
	return Config{
		Window:              100 * time.Millisecond,
		BackoffThreshold:    3,
		QuarantineThreshold: 5,
		ShedThreshold:       8,
		BackoffBase:         10 * time.Millisecond,
		BackoffMax:          40 * time.Millisecond,
		Cooldown:            50 * time.Millisecond,
		Clock:               clk.Now,
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.Window != time.Second {
		t.Errorf("Window default = %v, want 1s", cfg.Window)
	}
	if cfg.BackoffThreshold != 3 || cfg.QuarantineThreshold != 6 || cfg.ShedThreshold != 12 {
		t.Errorf("threshold defaults = %d/%d/%d, want 3/6/12",
			cfg.BackoffThreshold, cfg.QuarantineThreshold, cfg.ShedThreshold)
	}
	if cfg.BackoffBase != time.Millisecond || cfg.BackoffMax != 100*time.Millisecond {
		t.Errorf("backoff defaults = %v/%v", cfg.BackoffBase, cfg.BackoffMax)
	}
	if cfg.Cooldown != time.Second {
		t.Errorf("Cooldown default = %v, want 1s", cfg.Cooldown)
	}
	// Negative disables shedding: the engine never leaves quarantine.
	e = New(Config{ShedThreshold: -1})
	if e.Config().ShedThreshold != 0 {
		t.Errorf("ShedThreshold(-1) = %d, want 0 (disabled)", e.Config().ShedThreshold)
	}
}

// TestLadderWalk drives one UDI through the full escalation ladder with
// a scripted op sequence and checks every decision — the same shape the
// chaos policy campaign asserts end to end.
func TestLadderWalk(t *testing.T) {
	type step struct {
		op      string // "rewind", "admit", "advance"
		d       time.Duration
		action  Action
		state   State
		winN    int   // -1 to skip
		retryNs int64 // -1 to skip
	}
	steps := []step{
		// Two rewinds inside budget.
		{op: "rewind", action: ActionRewind, state: StateHealthy, winN: 1},
		{op: "admit", action: ActionNone, state: StateHealthy, winN: 1},
		{op: "rewind", action: ActionRewind, state: StateHealthy, winN: 2},
		// Third trips backoff: hold-off = base (10ms).
		{op: "rewind", action: ActionBackoff, state: StateBackoff, winN: 3,
			retryNs: int64(10 * time.Millisecond)},
		// Admission denied during the hold-off.
		{op: "admit", action: ActionDeny, state: StateBackoff,
			retryNs: int64(10 * time.Millisecond)},
		{op: "advance", d: 4 * time.Millisecond},
		{op: "admit", action: ActionDeny, state: StateBackoff,
			retryNs: int64(6 * time.Millisecond)},
		// Hold-off expires with rewinds still in the window: readmitted,
		// but still Backoff.
		{op: "advance", d: 6 * time.Millisecond},
		{op: "admit", action: ActionReadmit, state: StateBackoff, winN: 3},
		// Fourth rewind doubles the hold-off (20ms).
		{op: "rewind", action: ActionBackoff, state: StateBackoff, winN: 4,
			retryNs: int64(20 * time.Millisecond)},
		{op: "advance", d: 20 * time.Millisecond},
		{op: "admit", action: ActionReadmit, state: StateBackoff},
		// Fifth crosses the quarantine threshold.
		{op: "rewind", action: ActionQuarantine, state: StateQuarantined, winN: 5,
			retryNs: int64(50 * time.Millisecond)},
		{op: "admit", action: ActionDeny, state: StateQuarantined,
			retryNs: int64(50 * time.Millisecond)},
		// Cool-down expires → probation readmit into Backoff.
		{op: "advance", d: 50 * time.Millisecond},
		{op: "admit", action: ActionReadmit, state: StateBackoff},
		// A rewind right after probation re-quarantines (count 6 is
		// still over the threshold — nothing has left the window yet).
		{op: "rewind", action: ActionQuarantine, state: StateQuarantined, winN: 6},
		{op: "advance", d: 50 * time.Millisecond},
		{op: "admit", action: ActionReadmit, state: StateBackoff},
		// 130ms have now elapsed: the two cool-downs drained every entry
		// older than now-100ms, leaving only the last quarantine's
		// rewind. The next rewind is back under the backoff threshold —
		// absorbed normally — but the domain stays on probation
		// (Backoff) until an Admit observes a drained window.
		{op: "rewind", action: ActionRewind, state: StateBackoff, winN: 2},
		// Hammer without advancing the clock: the ladder re-escalates
		// deterministically — backoff (hold-off now at the 40ms cap,
		// step 3), quarantine at 5, shed at 8.
		{op: "rewind", action: ActionBackoff, state: StateBackoff, winN: 3},
		{op: "rewind", action: ActionBackoff, state: StateBackoff, winN: 4},
		{op: "rewind", action: ActionQuarantine, state: StateQuarantined, winN: 5},
		{op: "rewind", action: ActionQuarantine, state: StateQuarantined, winN: 6},
		{op: "rewind", action: ActionQuarantine, state: StateQuarantined, winN: 7},
		{op: "rewind", action: ActionShed, state: StateShedding, winN: 8},
		// Shedding is permanent: denial with no retry hint, rewinds keep
		// reporting shed.
		{op: "admit", action: ActionDeny, state: StateShedding, retryNs: 0},
		{op: "advance", d: time.Hour},
		{op: "admit", action: ActionDeny, state: StateShedding, retryNs: 0},
		{op: "rewind", action: ActionShed, state: StateShedding},
	}

	clk := &ManualClock{}
	e := New(testConfig(clk))
	const udi = 7
	for i, s := range steps {
		var dec Decision
		switch s.op {
		case "advance":
			clk.Advance(s.d)
			continue
		case "rewind":
			dec = e.OnRewind(udi)
		case "admit":
			dec = e.Admit(udi)
		}
		if dec.Action != s.action {
			t.Fatalf("step %d (%s): action = %v, want %v (dec=%+v)", i, s.op, dec.Action, s.action, dec)
		}
		if dec.State != s.state {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, dec.State, s.state)
		}
		if s.winN > 0 && dec.WindowCount != s.winN {
			t.Fatalf("step %d (%s): window count = %d, want %d", i, s.op, dec.WindowCount, s.winN)
		}
		if s.retryNs >= 0 && s.op != "rewind" && dec.RetryAfterNs != s.retryNs {
			t.Fatalf("step %d (%s): retry-after = %d, want %d", i, s.op, dec.RetryAfterNs, s.retryNs)
		}
	}
}

// TestWindowBoundary pins the prune semantics: an entry recorded at T is
// outside the window exactly at T+Window (closed left edge), not one
// nanosecond later.
func TestWindowBoundary(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	const udi = 1

	e.OnRewind(udi) // T = 1
	e.OnRewind(udi) // still T = 1, window count 2

	clk.Advance(100 * time.Millisecond) // now = T + Window
	if dec := e.OnRewind(udi); dec.WindowCount != 1 {
		t.Fatalf("at T+Window: count = %d, want 1 (both old entries pruned)", dec.WindowCount)
	}

	// An entry one tick inside the window survives.
	clk.Advance(100*time.Millisecond - 1)
	if dec := e.OnRewind(udi); dec.WindowCount != 2 {
		t.Fatalf("at T'+Window-1: count = %d, want 2", dec.WindowCount)
	}
}

// TestClockSkew feeds the engine a clock that jumps backwards and checks
// the monotonic clamp: decisions never un-order and hold-offs never go
// negative.
func TestClockSkew(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	const udi = 3

	clk.Set(int64(time.Second))
	for i := 0; i < 3; i++ {
		e.OnRewind(udi)
	}
	// Engine is in backoff with deniedUntil = 1s + 10ms. Rewind the
	// clock source by half a second.
	clk.Set(int64(500 * time.Millisecond))
	dec := e.Admit(udi)
	if dec.Action != ActionDeny {
		t.Fatalf("after skew: action = %v, want deny", dec.Action)
	}
	if dec.RetryAfterNs <= 0 || dec.RetryAfterNs > int64(10*time.Millisecond) {
		t.Fatalf("after skew: retry-after = %d, want (0, 10ms]", dec.RetryAfterNs)
	}
	if dec.TimeNs < int64(time.Second) {
		t.Fatalf("decision time went backwards: %d", dec.TimeNs)
	}
	// The skewed source can stall the ladder but time never reverses:
	// advancing the source past the clamp resumes normally.
	clk.Set(int64(2 * time.Second))
	if dec := e.Admit(udi); dec.Action != ActionReadmit {
		t.Fatalf("after recovery: action = %v, want readmit", dec.Action)
	}
}

// TestBackoffCap checks the exponential hold-off sequence and its cap.
func TestBackoffCap(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	want := []int64{
		int64(10 * time.Millisecond),
		int64(20 * time.Millisecond),
		int64(40 * time.Millisecond),
		int64(40 * time.Millisecond), // capped
		int64(40 * time.Millisecond),
	}
	for i, w := range want {
		if got := e.backoffHold(i + 1); got != w {
			t.Errorf("backoffHold(%d) = %d, want %d", i+1, got, w)
		}
	}
	// A pathological step count must not overflow into a negative hold.
	if got := e.backoffHold(200); got != int64(40*time.Millisecond) {
		t.Errorf("backoffHold(200) = %d, want cap", got)
	}
}

// TestWindowDrainResetsToHealthy: a backoff domain whose window empties
// during the hold-off returns to Healthy with its step counter reset.
func TestWindowDrainResetsToHealthy(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	const udi = 2
	for i := 0; i < 3; i++ {
		e.OnRewind(udi)
	}
	clk.Advance(200 * time.Millisecond) // hold-off over AND window drained
	dec := e.Admit(udi)
	if dec.Action != ActionReadmit || dec.State != StateHealthy {
		t.Fatalf("drained readmit = %v/%v, want readmit/healthy", dec.Action, dec.State)
	}
	snap := e.Snapshot()
	if len(snap) != 1 || snap[0].BackoffStep != 0 {
		t.Fatalf("snapshot after drain = %+v, want backoff_step 0", snap)
	}
	// The next burst starts the ladder from the base hold-off again.
	for i := 0; i < 2; i++ {
		e.OnRewind(udi)
	}
	if dec := e.OnRewind(udi); dec.RetryAfterNs != int64(10*time.Millisecond) {
		t.Fatalf("post-reset hold-off = %d, want base", dec.RetryAfterNs)
	}
}

// TestPerUDIIsolation: one UDI's escalation never leaks into a sibling.
func TestPerUDIIsolation(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	for i := 0; i < 8; i++ {
		e.OnRewind(1)
	}
	if dec := e.Admit(1); dec.State != StateShedding {
		t.Fatalf("udi 1 state = %v, want shedding", dec.State)
	}
	if dec := e.Admit(2); !dec.Allowed() || dec.State != StateHealthy {
		t.Fatalf("udi 2 = %+v, want healthy/allowed", dec)
	}
	if dec := e.OnRewind(2); dec.Action != ActionRewind {
		t.Fatalf("udi 2 rewind = %v, want plain rewind", dec.Action)
	}
}

// TestNilEngine: the nil *Engine is a full no-op policy.
func TestNilEngine(t *testing.T) {
	var e *Engine
	if dec := e.OnRewind(5); dec.Action != ActionRewind || !dec.Allowed() {
		t.Fatalf("nil OnRewind = %+v", dec)
	}
	if dec := e.Admit(5); dec.Action != ActionNone || !dec.Allowed() {
		t.Fatalf("nil Admit = %+v", dec)
	}
	if s := e.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot = %v, want nil", s)
	}
	e.AttachTelemetry(nil) // must not panic
}

// TestTelemetryMirroring checks the metric families an attached recorder
// accumulates across a full ladder walk.
func TestTelemetryMirroring(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	rec := telemetry.New(telemetry.Options{})
	e.AttachTelemetry(rec)

	const udi = 4
	for i := 0; i < 5; i++ {
		e.OnRewind(udi) // 3rd → backoff, 5th → quarantine
	}
	e.Admit(udi) // deny (cool-down running)
	clk.Advance(60 * time.Millisecond)
	e.Admit(udi) // readmit

	snap := rec.Registry().SnapshotJSON()
	if st, _ := snap["sdrad_policy_state"].(map[string]int64); st["4"] != int64(StateBackoff) {
		t.Errorf("sdrad_policy_state{4} = %v, want backoff", snap["sdrad_policy_state"])
	}
	// The counter is per backoff *decision*: the 3rd rewind trips
	// backoff and the 4th extends it — two backoff actions.
	if esc, _ := snap["sdrad_policy_escalations_total"].(map[string]int64); esc["backoff"] != 2 || esc["quarantine"] != 1 {
		t.Errorf("sdrad_policy_escalations_total = %v, want backoff:2 quarantine:1", snap["sdrad_policy_escalations_total"])
	}
	if v, _ := snap["sdrad_policy_denials_total"].(int64); v != 1 {
		t.Errorf("sdrad_policy_denials_total = %v, want 1", snap["sdrad_policy_denials_total"])
	}
	if v, _ := snap["sdrad_policy_readmissions_total"].(int64); v != 1 {
		t.Errorf("sdrad_policy_readmissions_total = %v, want 1", snap["sdrad_policy_readmissions_total"])
	}
}

// TestConcurrentHammer exercises the engine from many goroutines (run
// with -race): correctness here is "no race, no panic, totals add up".
func TestConcurrentHammer(t *testing.T) {
	e := New(Config{Window: time.Hour, ShedThreshold: -1})
	rec := telemetry.New(telemetry.Options{})
	e.AttachTelemetry(rec)
	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			udi := g % 4
			for i := 0; i < iters; i++ {
				e.OnRewind(udi)
				e.Admit(udi)
				if i%32 == 0 {
					e.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, snap := range e.Snapshot() {
		total += snap.TotalRewinds
	}
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("total rewinds = %d, want %d", total, want)
	}
}

// TestSnapshotFields pins the JSON-facing snapshot shape.
func TestSnapshotFields(t *testing.T) {
	clk := &ManualClock{}
	e := New(testConfig(clk))
	for i := 0; i < 3; i++ {
		e.OnRewind(9)
	}
	e.OnRewind(2)
	snaps := e.Snapshot()
	if len(snaps) != 2 || snaps[0].UDI != 2 || snaps[1].UDI != 9 {
		t.Fatalf("snapshot order = %+v, want UDIs [2 9]", snaps)
	}
	s := snaps[1]
	if s.State != "backoff" || s.WindowCount != 3 || s.BackoffStep != 1 ||
		s.TotalRewinds != 3 || s.Escalations != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.DeniedForNs != int64(10*time.Millisecond) {
		t.Fatalf("denied_for = %d, want 10ms", s.DeniedForNs)
	}
}

func TestOnPressureEscalatesToBackoff(t *testing.T) {
	clk := &ManualClock{}
	clk.Set(int64(time.Hour))
	e := New(testConfig(clk))

	// Pressure on a healthy domain: straight to Backoff with the base
	// hold-off, no rewind recorded in the window.
	dec := e.OnPressure(7)
	if dec.Action != ActionBackoff || dec.State != StateBackoff {
		t.Fatalf("pressure on healthy: action=%v state=%v, want backoff/backoff", dec.Action, dec.State)
	}
	if dec.RetryAfterNs != int64(10*time.Millisecond) {
		t.Fatalf("pressure hold = %dns, want base 10ms", dec.RetryAfterNs)
	}
	if dec.WindowCount != 0 {
		t.Fatalf("pressure recorded %d window rewinds, want 0", dec.WindowCount)
	}
	// Admission is denied while the hold-off runs.
	if ad := e.Admit(7); ad.Action != ActionDeny {
		t.Fatalf("admit during pressure hold: %v, want deny", ad.Action)
	}
	// Repeated pressure doubles the hold-off (step 2 = 20ms).
	dec = e.OnPressure(7)
	if dec.RetryAfterNs != int64(20*time.Millisecond) {
		t.Fatalf("second pressure hold = %dns, want 20ms", dec.RetryAfterNs)
	}
	// Hold-off expires with an empty window: readmit, then healthy.
	clk.Advance(25 * time.Millisecond)
	if ad := e.Admit(7); ad.Action != ActionReadmit {
		t.Fatalf("admit after hold: %v, want readmit", ad.Action)
	}
	if ad := e.Admit(7); ad.Action != ActionNone || ad.State != StateHealthy {
		t.Fatalf("admit after readmit: action=%v state=%v, want none/healthy", ad.Action, ad.State)
	}
}

func TestOnPressureDoesNotDemoteQuarantine(t *testing.T) {
	clk := &ManualClock{}
	clk.Set(int64(time.Hour))
	e := New(testConfig(clk))
	for i := 0; i < 5; i++ {
		e.OnRewind(3)
	}
	if snap := e.Snapshot(); snap[0].State != "quarantined" {
		t.Fatalf("precondition: state %s, want quarantined", snap[0].State)
	}
	dec := e.OnPressure(3)
	if dec.Action != ActionNone || dec.State != StateQuarantined {
		t.Fatalf("pressure on quarantined: action=%v state=%v, want none/quarantined", dec.Action, dec.State)
	}
}

func TestOnPressureNilEngine(t *testing.T) {
	var e *Engine
	if dec := e.OnPressure(1); dec.Action != ActionNone {
		t.Fatalf("nil engine pressure: %v, want none", dec.Action)
	}
}
