package sig

import (
	"testing"
	"testing/quick"
)

func TestDefaultDispositions(t *testing.T) {
	tbl := NewTable()
	cases := []struct {
		sig  Signal
		want Action
	}{
		{SIGSEGV, ActionTerminate},
		{SIGABRT, ActionTerminate},
		{SIGKILL, ActionTerminate},
		{SIGTERM, ActionTerminate},
		{Signal(40), ActionIgnored},
	}
	for _, c := range cases {
		got := tbl.Deliver(&Info{Signal: c.sig}, 0, nil)
		if got != c.want {
			t.Errorf("default action for %v = %v, want %v", c.sig, got, c.want)
		}
	}
}

func TestHandlerInvocation(t *testing.T) {
	tbl := NewTable()
	var seen *Info
	var seenTLS any
	tbl.Register(SIGSEGV, func(info *Info, tls any) Action {
		seen = info
		seenTLS = tls
		return ActionHandled
	})
	info := &Info{Signal: SIGSEGV, Code: 4, Addr: 0x1234, PKey: 7}
	got := tbl.Deliver(info, 0, "thread-9")
	if got != ActionHandled {
		t.Fatalf("action = %v", got)
	}
	if seen != info || seenTLS != "thread-9" {
		t.Error("handler did not receive info/tls")
	}
	if tbl.Delivered(SIGSEGV) != 1 {
		t.Errorf("delivered count = %d", tbl.Delivered(SIGSEGV))
	}
}

func TestUnregisterRestoresDefault(t *testing.T) {
	tbl := NewTable()
	tbl.Register(SIGSEGV, func(*Info, any) Action { return ActionHandled })
	tbl.Register(SIGSEGV, nil)
	if got := tbl.Deliver(&Info{Signal: SIGSEGV}, 0, nil); got != ActionTerminate {
		t.Errorf("after unregister = %v, want terminate", got)
	}
}

func TestIgnoreSemantics(t *testing.T) {
	tbl := NewTable()
	tbl.Ignore(SIGTERM)
	if got := tbl.Deliver(&Info{Signal: SIGTERM}, 0, nil); got != ActionIgnored {
		t.Errorf("ignored SIGTERM = %v", got)
	}
	// Ignoring SIGSEGV still terminates (kernel semantics for synchronous
	// faults).
	tbl.Ignore(SIGSEGV)
	if got := tbl.Deliver(&Info{Signal: SIGSEGV}, 0, nil); got != ActionTerminate {
		t.Errorf("ignored SIGSEGV = %v, want terminate", got)
	}
	// SIGKILL cannot be ignored.
	tbl.Ignore(SIGKILL)
	if got := tbl.Deliver(&Info{Signal: SIGKILL}, 0, nil); got != ActionTerminate {
		t.Errorf("SIGKILL after Ignore = %v, want terminate", got)
	}
}

func TestBlockedSynchronousSignalIsFatal(t *testing.T) {
	tbl := NewTable()
	called := false
	tbl.Register(SIGSEGV, func(*Info, any) Action {
		called = true
		return ActionHandled
	})
	mask := Mask(0).Block(SIGSEGV)
	got := tbl.Deliver(&Info{Signal: SIGSEGV}, mask, nil)
	if got != ActionTerminate {
		t.Errorf("blocked SIGSEGV = %v, want terminate", got)
	}
	if called {
		t.Error("handler ran for blocked synchronous signal")
	}
}

func TestMaskOps(t *testing.T) {
	var m Mask
	if m.Has(SIGSEGV) {
		t.Error("zero mask blocks SIGSEGV")
	}
	m = m.Block(SIGSEGV).Block(SIGTERM)
	if !m.Has(SIGSEGV) || !m.Has(SIGTERM) || m.Has(SIGABRT) {
		t.Error("block set wrong bits")
	}
	m = m.Unblock(SIGSEGV)
	if m.Has(SIGSEGV) || !m.Has(SIGTERM) {
		t.Error("unblock cleared wrong bits")
	}
	// Out-of-range signals are no-ops.
	if m.Block(0) != m || m.Block(65) != m || m.Unblock(-1) != m {
		t.Error("out-of-range signal changed mask")
	}
	if m.Has(0) || m.Has(99) {
		t.Error("out-of-range Has returned true")
	}
}

// Property: Block sets exactly the requested bit and Unblock reverses it.
func TestQuickMaskRoundTrip(t *testing.T) {
	prop := func(base uint64, raw uint8) bool {
		s := Signal(int(raw%maxSignal) + 1)
		m := Mask(base)
		if !m.Block(s).Has(s) {
			return false
		}
		if m.Block(s).Unblock(s).Has(s) {
			return false
		}
		// Other bits untouched.
		other := Signal((int(s) % maxSignal) + 1)
		if other != s {
			before := m.Has(other)
			if m.Block(s).Has(other) != before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" || SIGABRT.String() != "SIGABRT" ||
		SIGKILL.String() != "SIGKILL" || SIGTERM.String() != "SIGTERM" {
		t.Error("Signal.String broken")
	}
	if Signal(33).String() == "" {
		t.Error("unknown signal should format")
	}
	info := &Info{Signal: SIGSEGV, Code: 4, Addr: 0x10, PKey: 2}
	if info.String() == "" {
		t.Error("Info.String empty")
	}
	for _, a := range []Action{ActionTerminate, ActionHandled, ActionIgnored, Action(99)} {
		if a.String() == "" {
			t.Error("Action.String empty")
		}
	}
}
