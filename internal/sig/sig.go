// Package sig simulates the slice of POSIX signal semantics that SDRaD
// depends on: per-process dispositions for synchronous faults, si_code
// discrimination for SIGSEGV, delivery to the faulting thread, and the
// per-thread signal mask that is saved and restored as part of an
// execution context (setjmp/longjmp save the mask too).
//
// In the real system the kernel delivers SIGSEGV to the thread that
// faulted and the SDRaD signal handler decides between rewinding and
// letting the process die. In the simulation, memory faults surface as
// panics; the process layer recovers them, builds an Info, and consults
// the process's signal Table, which produces the same decision.
package sig

import (
	"fmt"
	"sync"
)

// Signal is a POSIX signal number.
type Signal int

// Signals used by the simulation. Values match Linux on x86-64.
const (
	SIGABRT Signal = 6
	SIGKILL Signal = 9
	SIGSEGV Signal = 11
	SIGTERM Signal = 15

	maxSignal = 64
)

func (s Signal) String() string {
	switch s {
	case SIGABRT:
		return "SIGABRT"
	case SIGKILL:
		return "SIGKILL"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGTERM:
		return "SIGTERM"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// Info mirrors the subset of siginfo_t the SDRaD handler inspects.
type Info struct {
	// Signal is the delivered signal.
	Signal Signal
	// Code is the si_code value; for SIGSEGV it discriminates
	// SEGV_MAPERR (1), SEGV_ACCERR (2), and SEGV_PKUERR (4).
	Code int
	// Addr is the faulting address (si_addr), if any.
	Addr uint64
	// PKey is the protection key involved in a SEGV_PKUERR (si_pkey).
	PKey int
	// Cause optionally carries the underlying simulated-trap value.
	Cause error
}

func (i *Info) String() string {
	return fmt.Sprintf("%v code=%d addr=0x%x pkey=%d", i.Signal, i.Code, i.Addr, i.PKey)
}

// Action is the outcome of delivering a signal.
type Action int

// Delivery outcomes.
const (
	// ActionTerminate: the process must terminate (default disposition of
	// fatal signals, or the handler could not recover).
	ActionTerminate Action = iota + 1
	// ActionHandled: a handler consumed the signal and execution may
	// continue (for SDRaD, this means a rewind is in progress).
	ActionHandled
	// ActionIgnored: the disposition was SIG_IGN.
	ActionIgnored
)

func (a Action) String() string {
	switch a {
	case ActionTerminate:
		return "terminate"
	case ActionHandled:
		return "handled"
	case ActionIgnored:
		return "ignored"
	default:
		return "unknown"
	}
}

// Handler processes a delivered signal. The tls argument carries the
// per-thread state of the faulting thread (the simulation's stand-in for
// the ucontext pointer); handlers return whether they recovered.
type Handler func(info *Info, tls any) Action

// Table holds the per-process signal dispositions, mirroring the table the
// kernel keeps per process (signal handlers are process-wide; delivery of
// a synchronous fault is to the faulting thread).
type Table struct {
	mu       sync.RWMutex
	handlers map[Signal]Handler
	ignored  map[Signal]bool
	// delivered counts deliveries per signal for observability.
	delivered map[Signal]int
	// observer, when set, sees every delivery and its outcome (telemetry).
	observer func(info *Info, action Action)
}

// NewTable returns a table with default dispositions for all signals.
func NewTable() *Table {
	return &Table{
		handlers:  make(map[Signal]Handler),
		ignored:   make(map[Signal]bool),
		delivered: make(map[Signal]int),
	}
}

// Register installs a handler for sig, mirroring sigaction(2). A nil
// handler restores the default disposition.
func (t *Table) Register(sig Signal, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h == nil {
		delete(t.handlers, sig)
		return
	}
	t.handlers[sig] = h
	delete(t.ignored, sig)
}

// Ignore sets the SIG_IGN disposition for sig. SIGKILL cannot be ignored.
func (t *Table) Ignore(sig Signal) {
	if sig == SIGKILL {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ignored[sig] = true
	delete(t.handlers, sig)
}

// SetObserver installs (or, with nil, removes) a callback invoked after
// every delivery with the resulting action. The telemetry subsystem uses
// it to record signal events; the callback must not call back into the
// table.
func (t *Table) SetObserver(fn func(info *Info, action Action)) {
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// Deliver routes info to the registered handler of the faulting thread,
// falling back to the default action. Synchronous faults (SIGSEGV) that a
// thread has blocked in its mask cause immediate termination, matching
// kernel behaviour for blocked synchronous signals.
func (t *Table) Deliver(info *Info, mask Mask, tls any) Action {
	t.mu.Lock()
	t.delivered[info.Signal]++
	h := t.handlers[info.Signal]
	ign := t.ignored[info.Signal]
	obs := t.observer
	t.mu.Unlock()

	act := deliverAction(info, mask, h, ign, tls)
	if obs != nil {
		obs(info, act)
	}
	return act
}

// deliverAction computes the delivery outcome.
func deliverAction(info *Info, mask Mask, h Handler, ign bool, tls any) Action {
	if info.Signal == SIGSEGV && mask.Has(SIGSEGV) {
		// A blocked synchronous signal is fatal; the handler never runs.
		return ActionTerminate
	}
	if ign {
		if isFatalSync(info.Signal) {
			// Ignoring a synchronous fault re-executes the faulting
			// instruction forever; the kernel terminates instead.
			return ActionTerminate
		}
		return ActionIgnored
	}
	if h != nil {
		return h(info, tls)
	}
	return defaultAction(info.Signal)
}

// Delivered returns how many times sig has been delivered.
func (t *Table) Delivered(sig Signal) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.delivered[sig]
}

func isFatalSync(s Signal) bool { return s == SIGSEGV }

func defaultAction(s Signal) Action {
	switch s {
	case SIGABRT, SIGKILL, SIGSEGV, SIGTERM:
		return ActionTerminate
	default:
		return ActionIgnored
	}
}

// Mask is a per-thread signal mask (sigprocmask state). The zero value
// blocks nothing. Masks are saved in execution contexts and restored on
// rewind, like sigsetjmp/siglongjmp with savesigs != 0.
type Mask uint64

// Block returns m with sig blocked.
func (m Mask) Block(sig Signal) Mask {
	if sig <= 0 || sig > maxSignal {
		return m
	}
	return m | 1<<(uint(sig)-1)
}

// Unblock returns m with sig unblocked.
func (m Mask) Unblock(sig Signal) Mask {
	if sig <= 0 || sig > maxSignal {
		return m
	}
	return m &^ (1 << (uint(sig) - 1))
}

// Has reports whether sig is blocked in m.
func (m Mask) Has(sig Signal) bool {
	if sig <= 0 || sig > maxSignal {
		return false
	}
	return m&(1<<(uint(sig)-1)) != 0
}
