package sdrad_test

import (
	"errors"
	"fmt"

	"sdrad"
)

// ExampleLibrary_Guard shows the paper's Listing-1 pattern: a function
// runs isolated in its own domain; an attack against it is absorbed.
func ExampleLibrary_Guard() {
	p := sdrad.NewProcess("example", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p)
	if err != nil {
		panic(err)
	}
	_ = p.Attach("main", func(t *sdrad.Thread) error {
		const udi = sdrad.UDI(1)
		gerr := lib.Guard(t, udi, func() error {
			buf, err := lib.Malloc(t, udi, 64)
			if err != nil {
				return err
			}
			if err := lib.Enter(t, udi); err != nil {
				return err
			}
			// The "vulnerable library call": writes out of bounds.
			t.CPU().WriteU8(buf+1<<40, 0x41)
			return lib.Exit(t)
		}, sdrad.Accessible())

		var abn *sdrad.AbnormalExit
		if errors.As(gerr, &abn) {
			fmt.Printf("recovered: domain %d discarded, process alive: %v\n",
				abn.FailedUDI, !p.Killed())
		}
		return nil
	})
	// Output: recovered: domain 1 discarded, process alive: true
}

// ExampleLibrary_DProtect shows a shared data domain with a read-only
// grant: the worker domain can read the shared state but a write is a
// protection-key violation that rewinds the worker.
func ExampleLibrary_DProtect() {
	p := sdrad.NewProcess("example", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p)
	if err != nil {
		panic(err)
	}
	_ = p.Attach("main", func(t *sdrad.Thread) error {
		const (
			shared = sdrad.UDI(2)
			worker = sdrad.UDI(3)
		)
		if err := lib.InitDomain(t, shared, sdrad.AsData(), sdrad.Accessible()); err != nil {
			return err
		}
		state, err := lib.Malloc(t, shared, 8)
		if err != nil {
			return err
		}
		t.CPU().WriteU64(state, 7)

		if err := lib.InitDomain(t, worker); err != nil {
			return err
		}
		if err := lib.DProtect(t, worker, shared, sdrad.ProtRead); err != nil {
			return err
		}
		gerr := lib.Guard(t, worker, func() error {
			if err := lib.Enter(t, worker); err != nil {
				return err
			}
			fmt.Printf("worker reads shared state: %d\n", t.CPU().ReadU64(state))
			t.CPU().WriteU64(state, 8) // read-only grant: traps
			return lib.Exit(t)
		})
		var abn *sdrad.AbnormalExit
		if errors.As(gerr, &abn) {
			fmt.Printf("write blocked and rewound; state still %d\n", t.CPU().ReadU64(state))
		}
		return nil
	})
	// Output:
	// worker reads shared state: 7
	// write blocked and rewound; state still 7
}

// ExampleWithRewindObserver shows the §VI incident feed.
func ExampleWithRewindObserver() {
	p := sdrad.NewProcess("example", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p, sdrad.WithRewindObserver(func(e sdrad.RewindEvent) {
		fmt.Printf("incident #%d: domain %d failed\n", e.Seq, e.FailedUDI)
	}))
	if err != nil {
		panic(err)
	}
	_ = p.Attach("main", func(t *sdrad.Thread) error {
		gerr := lib.Guard(t, 1, func() error {
			if err := lib.Enter(t, 1); err != nil {
				return err
			}
			t.CPU().WriteU8(0xBAD, 1)
			return nil
		})
		var abn *sdrad.AbnormalExit
		_ = errors.As(gerr, &abn)
		return nil
	})
	// Output: incident #1: domain 1 failed
}
