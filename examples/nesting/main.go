// Example: the paper's Figure 2 — deeply nested domains with mixed
// rewind targets, plus the incident-reporting and rewind-limit policies
// from §VI.
//
// An outer transient domain T wraps an inner persistent domain P that is
// configured with handler-at-grandparent: a fault inside P rewinds past
// T's recovery point all the way to the root-level handler, exactly as
// the figure shows ("abnormal exits may deviate from reverse entering
// order: both persistent and transient domain rewind to root domain").
//
//	go run ./examples/nesting
package main

import (
	"errors"
	"fmt"
	"os"

	"sdrad"
)

const (
	udiT = sdrad.UDI(1) // outer transient domain
	udiP = sdrad.UDI(2) // inner persistent domain (handler at grandparent)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nesting:", err)
		os.Exit(1)
	}
}

func run() error {
	p := sdrad.NewProcess("nesting")
	lib, err := sdrad.Setup(p,
		// §VI: report every rewind as an incident (SIEM feed)...
		sdrad.WithRewindObserver(func(e sdrad.RewindEvent) {
			fmt.Printf("  [incident] rewind #%d: domain %d on thread %q (%v at 0x%x)\n",
				e.Seq, e.FailedUDI, e.ThreadName, e.Signal, e.Addr)
		}),
		// ...and force a restart after too many of them (ASLR probing
		// protection). The limit is generous here so the demo completes.
		sdrad.WithRewindLimit(16),
	)
	if err != nil {
		return err
	}
	return p.Attach("main", func(t *sdrad.Thread) error {
		// Root-level recovery point: faults in P arrive HERE, not at T's
		// guard, because P uses HandlerAtGrandparent.
		err := lib.Guard(t, udiT, func() error {
			if err := lib.Enter(t, udiT); err != nil {
				return err
			}
			fmt.Println("entered outer transient domain T")

			// The inner persistent domain, nested inside T.
			err := lib.Guard(t, udiP, func() error {
				if err := lib.Enter(t, udiP); err != nil {
					return err
				}
				fmt.Println("entered inner persistent domain P — now faulting")
				t.CPU().WriteU8(0xBADBADBAD, 1)
				return nil
			}, sdrad.HandlerAtGrandparent())
			// Unreachable: the rewind targets T's scope and unwinds
			// through this frame.
			fmt.Println("UNREACHABLE: inner guard returned", err)
			return err
		})

		var abn *sdrad.AbnormalExit
		if !errors.As(err, &abn) {
			return fmt.Errorf("expected abnormal exit at the root handler, got %v", err)
		}
		fmt.Printf("root-level handler caught the rewind: failed domain = %d (P)\n", abn.FailedUDI)
		fmt.Printf("current domain after rewind: %d (root)\n", lib.Current(t))

		// T survived the pass-through (its memory is intact, its context
		// is invalidated); the error handler decides its fate — here we
		// destroy it, per the transient pattern.
		if err := lib.Destroy(t, udiT, sdrad.NoHeapMerge); err != nil {
			return err
		}
		fmt.Println("outer domain T destroyed by the error handler; service continues")
		return nil
	})
}
