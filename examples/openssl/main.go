// Example: the paper's OpenSSL case study (§V-C), both directions.
//
// Protecting the library from the application: AES-256-GCM contexts live
// in a persistent nested domain that is inaccessible to the caller — the
// paper's Listing 2 wrapper — with all three argument-passing design
// choices demonstrated. Reading the key from outside trips the isolation.
//
// Protecting the application from the library: the X.509 verifier with
// the CVE-2022-3786 punycode stack overflow runs in its own domain; a
// malicious certificate triggers a stack-canary detection and a rewind
// instead of killing the process.
//
//	go run ./examples/openssl
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"sdrad"
	"sdrad/internal/cryptolib"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "openssl example:", err)
		os.Exit(1)
	}
}

func run() error {
	p := sdrad.NewProcess("openssl-example")
	lib, err := sdrad.Setup(p, sdrad.WithRootHeapSize(8<<20))
	if err != nil {
		return err
	}
	return p.Attach("main", func(t *sdrad.Thread) error {
		if err := cipherDemo(lib, t); err != nil {
			return err
		}
		return x509Demo(lib, t, p)
	})
}

// cipherDemo isolates the cipher per Listing 2 and encrypts through each
// design choice.
func cipherDemo(lib *sdrad.Library, t *sdrad.Thread) error {
	fmt.Println("== protecting the library from the application ==")
	key := bytes.Repeat([]byte{0x2A}, 32)
	eng := cryptolib.NewEngine()
	plaintext := []byte("the session transcript")

	for _, mode := range []cryptolib.Mode{cryptolib.ModeCopyOut, cryptolib.ModeCopyBoth, cryptolib.ModeShared} {
		cr, err := cryptolib.NewCrypto(t, lib, eng, mode, key, 4096)
		if err != nil {
			return err
		}
		var in, out sdrad.Addr
		if mode == cryptolib.ModeShared {
			in, out = cr.DataBuf(), cr.SharedOut()
		} else {
			if in, err = lib.Malloc(t, sdrad.RootUDI, uint64(len(plaintext))); err != nil {
				return err
			}
			if out, err = lib.Malloc(t, sdrad.RootUDI, uint64(len(plaintext))+cryptolib.GCMTagSize); err != nil {
				return err
			}
		}
		t.CPU().Write(in, plaintext)
		before := lib.Stats().BytesCopied.Load()
		n, err := cr.EncryptUpdate(t, out, in, len(plaintext))
		if err != nil {
			return err
		}
		copied := lib.Stats().BytesCopied.Load() - before
		fmt.Printf("  %-9s: %d plaintext bytes -> %d ciphertext bytes, %d bytes marshalled across domains\n",
			mode, len(plaintext), n, copied)

		// Tear the domains down so the next mode can rebuild them (each
		// mode uses the same well-known domain indices).
		if err := lib.Destroy(t, cryptolib.OpenSSLUDI, sdrad.NoHeapMerge); err != nil {
			return err
		}
		if err := lib.Destroy(t, cryptolib.OpenSSLDataUDI, sdrad.NoHeapMerge); err != nil {
			return err
		}
	}
	fmt.Println("  (the paper's choice 3 — shared buffers — marshals nothing, and wins)")
	fmt.Println()
	return nil
}

// x509Demo runs the isolated verifier against good and malicious
// certificates.
func x509Demo(lib *sdrad.Library, t *sdrad.Thread, p *sdrad.Process) error {
	fmt.Println("== protecting the application from the library ==")
	v := cryptolib.NewVerifier(lib, 4096)

	good := cryptolib.FormatCertificate("client-7", "ops@example.org")
	res, err := v.Verify(t, good)
	if err != nil {
		return err
	}
	fmt.Printf("  good certificate: CN=%s valid=%v\n", res.CN, res.Valid)

	fmt.Println("  malicious certificate (CVE-2022-3786 punycode overflow)...")
	_, err = v.Verify(t, cryptolib.MaliciousCertificate())
	var abn *sdrad.AbnormalExit
	if !errors.As(err, &abn) {
		return fmt.Errorf("expected an abnormal exit, got %v", err)
	}
	fmt.Printf("  stack protector fired inside domain %d (%v); domain discarded\n",
		abn.FailedUDI, abn.Signal)
	fmt.Printf("  process alive: %v\n", !p.Killed())

	res, err = v.Verify(t, good)
	if err != nil || !res.Valid {
		return fmt.Errorf("post-attack verification failed: %v", err)
	}
	fmt.Println("  verification service recovered: good certificate accepted again")
	return nil
}
