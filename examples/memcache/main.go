// Example: the paper's Memcached case study (§V-A), side by side.
//
// Two cache servers — the unmodified baseline and the SDRaD-hardened
// build — each serve a well-behaved client while an attacker sends the
// CVE-2011-4971 analog (a binary packet claiming a 64 MiB body). The
// baseline process dies, taking every client's cached data with it; the
// hardened build discards the attacked domain, closes the attacker's
// connection, and keeps serving.
//
//	go run ./examples/memcache
package main

import (
	"fmt"
	"os"

	"sdrad/internal/memcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memcache example:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, variant := range []memcache.Variant{memcache.VariantVanilla, memcache.VariantSDRaD} {
		fmt.Printf("=== %s build ===\n", variant)
		if err := scenario(variant); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func scenario(variant memcache.Variant) error {
	s, err := memcache.NewServer(memcache.Config{
		Variant:    variant,
		Workers:    2,
		CacheBytes: 16 << 20,
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	// A well-behaved client stores session state.
	alice := s.NewConn()
	resp, _, err := alice.Do(memcache.FormatSet("session:alice", []byte("cart=3 items"), 0))
	if err != nil {
		return err
	}
	fmt.Printf("alice: set session -> %q\n", trim(resp))

	// The attacker sends the malicious binary-set packet.
	attacker := s.NewConn()
	fmt.Println("attacker: sending bset with a 64MiB claimed body length...")
	_, closed, aerr := attacker.Do(memcache.FormatBSet("x", 64<<20, []byte("payload")))
	switch {
	case aerr != nil:
		fmt.Printf("attacker: transport error: %v\n", aerr)
	case closed:
		fmt.Println("attacker: connection closed by the server")
	default:
		fmt.Println("attacker: request was served?!")
	}

	// Does alice still have her session?
	resp, _, err = alice.Do(memcache.FormatGet("session:alice"))
	if err != nil {
		fmt.Printf("alice: get session -> SERVER GONE (%v)\n", err)
	} else if val, _, ok := memcache.ParseGetValue(resp); ok {
		fmt.Printf("alice: get session -> %q (data intact)\n", val)
	} else {
		fmt.Println("alice: get session -> MISS (data lost)")
	}

	if crashed, cause := s.Crashed(); crashed {
		fmt.Printf("outcome: server process CRASHED (%v)\n", cause)
		fmt.Println("         every client lost its connection and all cached data")
	} else {
		fmt.Printf("outcome: server survived; rewinds absorbed: %d\n", s.Rewinds())
	}
	return nil
}

func trim(b []byte) string {
	s := string(b)
	for len(s) > 0 && (s[len(s)-1] == '\r' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}
