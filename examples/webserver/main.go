// Example: the paper's NGINX case study (§V-B) — a web server whose HTTP
// parser runs in an isolated domain, attacked with the CVE-2009-2629
// analog (a URI whose "../" segments underflow the normalization buffer).
//
// The baseline worker process dies and the master must restart it,
// dropping every connection the worker held. The hardened build rewinds
// the parser domain and only the malicious connection is closed.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"os"
	"strings"

	"sdrad/internal/httpd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webserver example:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, variant := range []httpd.Variant{httpd.VariantVanilla, httpd.VariantSDRaD} {
		fmt.Printf("=== %s build ===\n", variant)
		if err := scenario(variant); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func scenario(variant httpd.Variant) error {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: variant,
		Workers: 1,
		Files:   map[string]int{"/index.html": 512},
	})
	if err != nil {
		return err
	}
	defer m.Stop()
	w := m.Worker(0)

	// A keep-alive client browsing the site.
	browser := w.NewConn()
	resp, _, err := browser.Do(httpd.FormatRequest("/index.html", true))
	if err != nil {
		return err
	}
	fmt.Printf("browser: GET /index.html -> %s\n", statusLine(resp))

	// The attacker sends the parser-smashing URI.
	attacker := w.NewConn()
	evil := "/" + strings.Repeat("../", 200)
	fmt.Printf("attacker: GET with %d parent-directory segments...\n", 200)
	_, closed, aerr := attacker.Do(httpd.FormatRequest(evil, true))
	switch {
	case aerr != nil:
		fmt.Printf("attacker: transport error: %v\n", aerr)
	case closed:
		fmt.Println("attacker: connection closed by the server")
	}

	// Is the browser's keep-alive connection still alive?
	resp, _, err = browser.Do(httpd.FormatRequest("/index.html", true))
	if err != nil {
		fmt.Printf("browser: follow-up request -> CONNECTION LOST (%v)\n", err)
	} else {
		fmt.Printf("browser: follow-up request -> %s (connection preserved)\n", statusLine(resp))
	}

	if crashed, cause := w.Crashed(); crashed {
		fmt.Printf("outcome: worker process DIED (%v)\n", cause)
		dur, err := m.RestartWorker(0)
		if err != nil {
			return err
		}
		fmt.Printf("         master restarted it in %v; all its connections were lost\n", dur)
	} else {
		fmt.Printf("outcome: worker survived; parser rewinds: %d\n", w.Rewinds())
	}
	return nil
}

func statusLine(resp []byte) string {
	s := string(resp)
	if i := strings.Index(s, "\r\n"); i > 0 {
		return s[:i]
	}
	return s
}
