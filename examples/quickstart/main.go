// Quickstart: the paper's Listing 1 — call a function F in its own
// isolated domain, survive an attack against it, and keep running.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"os"

	"sdrad"
)

// udiF is the domain index we give F's sandbox.
const udiF = sdrad.UDI(1)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A simulated process with SDRaD linked in.
	p := sdrad.NewProcess("quickstart")
	lib, err := sdrad.Setup(p)
	if err != nil {
		return err
	}
	return p.Attach("main", func(t *sdrad.Thread) error {
		// 1. A well-behaved call: F checksums its argument in isolation.
		sum, err := isolatedF(lib, t, []byte("benign input"), false)
		if err != nil {
			return err
		}
		fmt.Printf("F(benign input) = %d (computed inside domain %d)\n", sum, udiF)

		// 2. A malicious call: F is attacked and corrupts memory. The
		// fault is confined to the domain, which is discarded; we get an
		// AbnormalExit instead of a dead process.
		_, err = isolatedF(lib, t, []byte("malicious input"), true)
		var abn *sdrad.AbnormalExit
		if !errors.As(err, &abn) {
			return fmt.Errorf("expected an abnormal exit, got %v", err)
		}
		fmt.Printf("attack detected: domain %d had an abnormal exit (%v, code %d)\n",
			abn.FailedUDI, abn.Signal, abn.Code)
		fmt.Printf("process alive: %v, rewinds: %d\n",
			!p.Killed(), lib.Stats().Rewinds.Load())

		// 3. Life goes on: the same domain index is usable again.
		sum, err = isolatedF(lib, t, []byte("more work"), false)
		if err != nil {
			return err
		}
		fmt.Printf("F(more work) = %d — service continues after the rewind\n", sum)
		return nil
	})
}

// isolatedF is Listing 1: allocate the argument inside an accessible
// nested domain, enter it, run F on the copy, exit, read the result back,
// and destroy the domain (transient pattern).
func isolatedF(lib *sdrad.Library, t *sdrad.Thread, arg []byte, attack bool) (byte, error) {
	var result byte
	err := lib.Guard(t, udiF, func() error {
		// Copy the argument into the domain.
		adr, err := lib.Malloc(t, udiF, uint64(len(arg)))
		if err != nil {
			return err
		}
		lib.WriteBytes(t, adr, arg)
		// Enter the domain and invoke F on the copy.
		if err := lib.Enter(t, udiF); err != nil {
			return err
		}
		result = f(t, adr, len(arg), attack)
		// Exit back to the parent.
		return lib.Exit(t)
	}, sdrad.Accessible())
	if err != nil {
		return 0, err
	}
	// Transient pattern: the domain is destroyed before we return.
	return result, lib.Destroy(t, udiF, sdrad.NoHeapMerge)
}

// f is the "third-party code with unknown memory vulnerabilities": it
// checksums its in-memory argument and, when attacked, scribbles far
// outside its allocation.
func f(t *sdrad.Thread, arg sdrad.Addr, n int, attack bool) byte {
	var sum byte
	for i := 0; i < n; i++ {
		sum += t.CPU().ReadU8(arg + sdrad.Addr(i))
	}
	if attack {
		// A wild write, e.g. through a corrupted pointer. This faults
		// against the domain boundary and triggers the rewind.
		t.CPU().WriteU8(0xDEADBEEF000, sum)
	}
	return sum
}
