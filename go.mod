module sdrad

go 1.24
