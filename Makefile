# Targets mirror the CI pipeline (.github/workflows/ci.yml): a green
# `make ci` locally means the required jobs pass.

GO ?= go

.PHONY: build test race vet fmt-check chaos-smoke bench-smoke throughput-gate parity-gate parity-bench policy-gate recovery-bench cluster-gate cluster-bench sched-gate sched-bench latency-gate latency-bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# A single fixed-seed round of every chaos campaign, as the smoke test runs.
chaos-smoke:
	$(GO) test -run TestChaosSmoke -v ./internal/chaos
	$(GO) run ./cmd/sdrad-chaos -seed 12648430 -ops 16

# The evaluation at reduced scale.
bench-smoke:
	$(GO) run ./cmd/sdrad-bench -quick

# The channel-path scaling curve against the committed baseline, as the
# bench-regression CI job gates it (full scale, ~3 minutes).
throughput-gate:
	$(GO) run ./cmd/sdrad-bench -throughput -throughput-baseline BENCH_throughput.json

# The check-elision parity gate: assert the committed baseline holds the
# headline cell (sdrad w8 d16) at >= 0.97x vanilla. Deterministic — it
# reads BENCH_throughput.json, runs nothing — so machine noise cannot
# flake it; a recording below the floor simply may not be committed.
parity-gate:
	$(GO) run ./cmd/sdrad-bench -parity-baseline BENCH_throughput.json

# Re-measure the paired parity grid live (~2 minutes on a quiet machine;
# the headline ratio is also re-recorded by `-throughput`, which is what
# updates the gated baseline).
parity-bench:
	$(GO) run ./cmd/sdrad-bench -parity

# The fixed-seed escalation-ladder campaign plus the recovery-cost gate,
# as the policy-gate CI job runs them.
policy-gate:
	$(GO) run ./cmd/sdrad-chaos -campaigns policy -seed 12648430 -ops 32
	$(GO) run ./cmd/sdrad-bench -quick -recovery-baseline BENCH_recovery.json

# Re-measure rewind-vs-restart recovery cost and rewrite the committed
# baseline (run on a quiet machine, then commit BENCH_recovery.json).
recovery-bench:
	$(GO) run ./cmd/sdrad-bench -quick -recovery-json BENCH_recovery.json

# The fixed-seed cluster chaos campaign plus the routed-path gates, as
# the cluster-gate CI job runs them. The scaling/availability gate is
# deterministic — it reads BENCH_cluster.json, runs nothing — and the
# live rerun is a coarse 50% sanity bound (routed throughput wears host
# scheduling noise the calibration loop cannot see).
cluster-gate:
	$(GO) run ./cmd/sdrad-chaos -campaigns cluster -seed 12648430 -ops 16
	$(GO) run ./cmd/sdrad-bench -cluster-gate BENCH_cluster.json
	$(GO) run ./cmd/sdrad-bench -quick -cluster-baseline BENCH_cluster.json

# Re-measure the routed scaling curve and availability-under-kill cell
# and rewrite the committed baseline (run on a quiet machine, then
# commit BENCH_cluster.json — it must still pass `make cluster-gate`).
cluster-bench:
	$(GO) run ./cmd/sdrad-bench -quick -cluster -cluster-json BENCH_cluster.json

# The adaptive-scheduler gate: the fixed-seed sched chaos campaign, then
# assert the committed baseline holds the scheduler cells — idle w1 d1
# p99 at <= 1.0x the fixed build and fault-storm goodput at >= 1.15x.
# The baseline check is deterministic (reads BENCH_throughput.json, runs
# nothing), so machine noise cannot flake it; a recording below the
# floors simply may not be committed.
sched-gate:
	$(GO) run ./cmd/sdrad-chaos -campaigns sched -seed 12648430 -ops 32
	$(GO) run ./cmd/sdrad-bench -sched-gate BENCH_throughput.json

# Re-measure the scheduler cells at full scale and merge them into the
# committed baseline (run on a quiet machine, then commit
# BENCH_throughput.json — it must still pass `make sched-gate`).
sched-bench:
	$(GO) run ./cmd/sdrad-bench -sched -sched-json BENCH_throughput.json

# The placement/stealing gate: the fixed-seed route chaos campaign, then
# assert the committed latency baseline holds the knee p99 win at >= 1.3x
# and the uniform p50 tax at <= 5%. The baseline check is deterministic
# (reads BENCH_latency.json, runs nothing), so machine noise cannot flake
# it; a recording below the floors simply may not be committed.
latency-gate:
	$(GO) run ./cmd/sdrad-chaos -campaigns route -seed 12648430 -ops 24
	$(GO) run ./cmd/sdrad-bench -latency-gate BENCH_latency.json

# Re-measure the latency-under-load curves at full scale and rewrite the
# committed baseline (run on a quiet machine, then commit
# BENCH_latency.json — it must still pass `make latency-gate`).
latency-bench:
	$(GO) run ./cmd/sdrad-bench -latency -latency-json BENCH_latency.json

ci: build vet fmt-check test race chaos-smoke parity-gate policy-gate cluster-gate sched-gate latency-gate
