package main

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestBadVariant(t *testing.T) {
	if err := run([]string{"-variant", "bogus"}); err == nil {
		t.Fatal("bad variant accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestProtocolOverTCP(t *testing.T) {
	addr := "127.0.0.1:11391"
	go func() { _ = run([]string{"-addr", addr, "-workers", "1", "-cache-mb", "4"}) }()
	var nc net.Conn
	var err error
	for i := 0; i < 50; i++ {
		nc, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = nc.Close() }()
	if _, err := nc.Write([]byte("set k 0 0 2\r\nhi\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	n, err := nc.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "STORED") {
		t.Fatalf("resp %q err %v", buf[:n], err)
	}
}
