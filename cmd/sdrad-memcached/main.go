// Command sdrad-memcached runs the SDRaD-hardened Memcached port as a
// real TCP server speaking (a subset of) the memcached text protocol.
//
// Usage:
//
//	sdrad-memcached [-addr 127.0.0.1:11311] [-workers 4] [-variant sdrad]
//
// Try it with a TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\n' | nc 127.0.0.1 11311
//	printf 'get k\r\n'                | nc 127.0.0.1 11311
//
// Attack it (CVE-2011-4971 analog) and watch it survive in sdrad mode —
// or die in vanilla mode:
//
//	printf 'bset k 67108864 0\r\n\r\n' | nc 127.0.0.1 11311
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"sdrad/internal/memcache"
	"sdrad/internal/policy"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrad-memcached:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrad-memcached", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:11311", "listen address")
	workers := fs.Int("workers", 4, "worker threads")
	variantName := fs.String("variant", "sdrad", "build variant: vanilla, tlsf, or sdrad")
	cacheMB := fs.Int("cache-mb", 64, "cache memory limit (MiB)")
	shards := fs.Int("shards", 8, "lock-striped storage shards (power of two)")
	maxBatch := fs.Int("max-batch", 16, "max pipelined requests handled per guard scope")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /flightrecorder on this address (empty = telemetry off)")
	usePolicy := fs.Bool("policy", false, "attach the resilience-policy engine: repeated rewinds of the event domain escalate to backoff, then quarantine (gets served as misses, mutations refused), then load shedding")
	useSched := fs.Bool("sched", false, "enable the self-tuning batch/shard scheduler: adaptive drain-batch bound (AIMD on load and rewind rate), shard-affinity batch splitting, and contention-driven slot rebalancing (off = the fixed max-batch drain, bit-identical to previous builds)")
	rebalanceEvery := fs.Duration("rebalance-interval", 0, "with -sched, run the contention-driven slot rebalancer at this interval (0 = off)")
	useRoute := fs.Bool("route", false, "with -sched, place new connections on the least-loaded worker (queue depth, EWMA service latency, rewind-window heat) instead of round-robin")
	useSteal := fs.Bool("steal", false, "with -sched, let idle floor-bound workers steal shard-aligned segments of backlogged siblings' pending keyed requests, each stolen segment in its own guard scope")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var variant memcache.Variant
	switch *variantName {
	case "vanilla":
		variant = memcache.VariantVanilla
	case "tlsf":
		variant = memcache.VariantTLSF
	case "sdrad":
		variant = memcache.VariantSDRaD
	default:
		return fmt.Errorf("unknown variant %q", *variantName)
	}
	var rec *telemetry.Recorder
	if *telAddr != "" {
		rec = telemetry.New(telemetry.Options{})
	}
	var eng *policy.Engine
	if *usePolicy {
		eng = policy.New(policy.Config{})
	}
	var schedCfg *sched.Config
	if *useSched {
		if variant != memcache.VariantSDRaD {
			return fmt.Errorf("-sched requires -variant sdrad (the scheduler tunes the guard-scope batch bound)")
		}
		schedCfg = &sched.Config{Route: *useRoute, Steal: *useSteal}
	} else if *useRoute || *useSteal {
		return fmt.Errorf("-route and -steal require -sched (placement and stealing read the scheduler's load signals)")
	}
	s, err := memcache.NewServer(memcache.Config{
		Variant:    variant,
		Workers:    *workers,
		CacheBytes: uint64(*cacheMB) << 20,
		Shards:     *shards,
		MaxBatch:   *maxBatch,
		Telemetry:  rec,
		Policy:     eng,
		Sched:      schedCfg,
	})
	if err != nil {
		return err
	}
	defer s.Stop()
	if schedCfg != nil && *rebalanceEvery > 0 {
		stop := s.StartRebalancer(*rebalanceEvery)
		defer stop()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sdrad-memcached (%s, %d workers) listening on %s\n", variant, *workers, ln.Addr())
	if schedCfg != nil {
		fmt.Printf("sched: adaptive batch bound (ceiling %d), shard-affinity splits, rebalance interval %s\n",
			s.MaxBatch(), rebalanceEvery.String())
		if *useRoute || *useSteal {
			fmt.Printf("sched: load-aware placement %v, cross-worker stealing %v\n", *useRoute, *useSteal)
		}
	}
	if eng != nil {
		pc := eng.Config()
		fmt.Printf("policy: backoff at %d, quarantine at %d, shed at %d rewinds per %s window\n",
			pc.BackoffThreshold, pc.QuarantineThreshold, pc.ShedThreshold, pc.Window)
	}
	if rec != nil {
		bound, err := rec.Serve(*telAddr)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("telemetry on http://%s/ (/metrics, /flightrecorder, /forensics)\n", bound)
	}
	serveErr := s.ServeListener(ln)
	if crashed, cause := s.Crashed(); crashed {
		fmt.Printf("server process CRASHED: %v\n", cause)
		fmt.Printf("rewinds before crash: %d\n", s.Rewinds())
		return cause
	}
	fmt.Printf("server stopped (rewinds absorbed: %d, degraded responses: %d)\n", s.Rewinds(), s.Degraded())
	return serveErr
}
