// Command sdrad-chaos runs deterministic fault-injection campaigns
// against the SDRaD simulation and audits the monitor's invariants after
// every absorbed rewind.
//
// Usage:
//
//	sdrad-chaos                       # one round of every campaign, random seed
//	sdrad-chaos -seed 12648430        # reproduce a specific run
//	sdrad-chaos -campaigns pku,httpd  # selected campaigns only
//	sdrad-chaos -budget 5m            # keep running fresh rounds for 5 minutes
//	sdrad-chaos -list                 # list campaign names
//
// Every run prints the seed it used; rerunning with that seed reproduces
// the identical fault schedule (compare the schedule hashes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"encoding/json"

	"sdrad/internal/chaos"
	"sdrad/internal/policy"
	"sdrad/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrad-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrad-chaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 0, "campaign seed (0 picks one from the clock)")
	ops := fs.Int("ops", 0, "operations per campaign (0 = default)")
	names := fs.String("campaigns", "", "comma-separated campaign names (empty = all)")
	list := fs.Bool("list", false, "list campaign names and exit")
	budget := fs.Duration("budget", 0, "keep running rounds with fresh seeds until the budget elapses")
	verbose := fs.Bool("v", false, "print every schedule line")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /flightrecorder on this address while campaigns run")
	flightDump := fs.String("flight-dump", "", "write the final telemetry dump (metrics, flight record, forensics) as JSON to this path")
	policyDump := fs.String("policy-dump", "", "write the policy campaign's per-phase engine snapshots as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, c := range chaos.Campaigns() {
			fmt.Printf("%-10s %s\n", c.Name, c.Desc)
		}
		return nil
	}
	var selected []string
	if *names != "" {
		selected = strings.Split(*names, ",")
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano() & 0x7fffffff
	}

	// One recorder spans every round, so the dump holds the whole run's
	// flight record and forensics reports. The campaigns' per-operation
	// forensics assertions work off counter deltas and are unaffected by
	// the shared history. A larger flight ring keeps more of the tail.
	var rec *telemetry.Recorder
	if *telAddr != "" || *flightDump != "" {
		rec = telemetry.New(telemetry.Options{FlightEvents: 65536, ForensicsRetain: 256})
		if *telAddr != "" {
			bound, err := rec.Serve(*telAddr)
			if err != nil {
				return fmt.Errorf("telemetry: %w", err)
			}
			fmt.Printf("telemetry on http://%s/ (/metrics, /flightrecorder, /forensics)\n", bound)
		}
	}

	// Per-phase engine snapshots from the policy campaign; later rounds
	// overwrite earlier ones so the dump reflects the final round.
	var policyState map[string][]policy.DomainSnapshot
	if *policyDump != "" {
		policyState = make(map[string][]policy.DomainSnapshot)
	}

	deadline := time.Now().Add(*budget)
	failed := 0
	for round := 0; ; round++ {
		roundSeed := *seed + int64(round)
		cfg := chaos.Config{Seed: roundSeed, Ops: *ops, Telemetry: rec}
		if policyState != nil {
			cfg.PolicySink = func(phase string, snaps []policy.DomainSnapshot) {
				policyState[phase] = snaps
			}
		}
		if *verbose {
			cfg.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
		}
		reports, err := chaos.RunSelected(selected, cfg)
		if err != nil {
			return err
		}
		for _, r := range reports {
			fmt.Println(r.Summary())
			if !r.Ok() {
				failed++
				for _, f := range r.Failures {
					fmt.Printf("  FAIL: %s\n", f)
				}
				fmt.Printf("  reproduce with: sdrad-chaos -seed %d -campaigns %s\n", roundSeed, r.Campaign)
			}
		}
		if *budget <= 0 || !time.Now().Before(deadline) {
			break
		}
	}
	if *flightDump != "" {
		data, err := rec.DumpJSON()
		if err != nil {
			return fmt.Errorf("flight dump: %w", err)
		}
		if err := os.WriteFile(*flightDump, data, 0o644); err != nil {
			return fmt.Errorf("flight dump: %w", err)
		}
		fmt.Printf("telemetry dump written to %s (%d flight events, %d forensics reports)\n",
			*flightDump, rec.Flight().Written(), rec.Forensics().Added())
	}
	if *policyDump != "" {
		data, err := json.MarshalIndent(policyState, "", "  ")
		if err != nil {
			return fmt.Errorf("policy dump: %w", err)
		}
		if err := os.WriteFile(*policyDump, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("policy dump: %w", err)
		}
		fmt.Printf("policy state written to %s (%d phases)\n", *policyDump, len(policyState))
	}
	if failed > 0 {
		return fmt.Errorf("%d campaign(s) failed", failed)
	}
	return nil
}
