// Command sdrad-router fronts a fleet of sdrad-memcached backends with
// a consistent-hash router that speaks the same memcached text protocol.
// Keys hash onto a virtual-node ring; pipelined batches are split per
// backend, flushed concurrently, and reassembled in arrival order.
// Backends whose telemetry shows a quarantined policy ladder or a rewind
// storm are demoted — their keys spill to ring successors — and readmit
// through probation once they calm down: the rewind-and-discard ladder,
// one level up.
//
// Usage:
//
//	sdrad-router -addr 127.0.0.1:11300 \
//	    -backend b0=127.0.0.1:11311,metrics=http://127.0.0.1:9311/metrics.json \
//	    -backend b1=127.0.0.1:11312 \
//	    -backend b2=127.0.0.1:11313
//
// Then point any memcached client at the router:
//
//	printf 'set k 0 0 5\r\nhello\r\n' | nc 127.0.0.1 11300
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"sdrad/internal/cluster"
	"sdrad/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrad-router:", err)
		os.Exit(1)
	}
}

// backendFlags collects repeated -backend values.
type backendFlags []cluster.Backend

func (b *backendFlags) String() string { return fmt.Sprintf("%d backends", len(*b)) }

// Set parses "name=host:port[,metrics=URL]".
func (b *backendFlags) Set(v string) error {
	spec, metrics, _ := strings.Cut(v, ",metrics=")
	name, addr, ok := strings.Cut(spec, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("backend %q: want name=host:port[,metrics=URL]", v)
	}
	*b = append(*b, cluster.Backend{Name: name, Addr: addr, MetricsURL: metrics})
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrad-router", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:11300", "listen address")
	var backends backendFlags
	fs.Var(&backends, "backend", "backend as name=host:port[,metrics=URL]; repeat per backend")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	poolSize := fs.Int("pool", 2, "pooled connections per backend")
	pollInterval := fs.Duration("poll-interval", 2*time.Second, "backend telemetry poll period (0 = no polling)")
	hotK := fs.Int("hot-k", 0, "replicate the top-K hottest keys (0 = off)")
	hotReplicas := fs.Int("hot-replicas", 2, "replicas per hot key, primary included")
	failThreshold := fs.Int("fail-threshold", 3, "consecutive exchange failures that demote a backend")
	holdOff := fs.Duration("hold-off", time.Second, "initial demotion hold-off (doubles per probation strike)")
	holdOffMax := fs.Duration("hold-off-max", 30*time.Second, "hold-off ceiling")
	probationOKs := fs.Int("probation-oks", 8, "successes a readmitted backend needs to return to full health")
	rewindRate := fs.Float64("rewind-rate", 50, "rewinds/sec of backend telemetry that trigger demotion")
	telAddr := fs.String("telemetry-addr", "", "serve router /metrics on this address (empty = telemetry off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(backends) == 0 {
		return fmt.Errorf("at least one -backend required")
	}
	var rec *telemetry.Recorder
	if *telAddr != "" {
		rec = telemetry.New(telemetry.Options{})
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Backends:     backends,
		VirtualNodes: *vnodes,
		PoolSize:     *poolSize,
		PollInterval: *pollInterval,
		HotK:         *hotK,
		HotReplicas:  *hotReplicas,
		Health: cluster.HealthConfig{
			FailThreshold: *failThreshold,
			HoldOff:       *holdOff,
			HoldOffMax:    *holdOffMax,
			ProbationOKs:  *probationOKs,
			RewindRate:    *rewindRate,
		},
		Telemetry: rec,
		Logf: func(format string, a ...any) {
			fmt.Printf("router: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	defer rt.Stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sdrad-router listening on %s (%d backends, %d vnodes each)\n",
		ln.Addr(), len(backends), *vnodes)
	for _, b := range backends {
		probe := "no telemetry"
		if b.MetricsURL != "" {
			probe = b.MetricsURL
		}
		fmt.Printf("  backend %s at %s (%s)\n", b.Name, b.Addr, probe)
	}
	if rec != nil {
		bound, err := rec.Serve(*telAddr)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("telemetry on http://%s/metrics\n", bound)
	}
	return rt.Serve(ln)
}
