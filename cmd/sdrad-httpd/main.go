// Command sdrad-httpd runs the SDRaD-hardened NGINX-style web server as a
// real TCP server.
//
// Usage:
//
//	sdrad-httpd [-addr 127.0.0.1:8089] [-workers 2] [-variant sdrad]
//
// Try it:
//
//	curl -s http://127.0.0.1:8089/index.html | head -c 64
//
// Attack the parser (CVE-2009-2629 analog) and watch the hardened build
// close only that connection:
//
//	curl -s --path-as-is "http://127.0.0.1:8089/$(python3 -c 'print("../"*200)')"
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"sdrad/internal/httpd"
	"sdrad/internal/policy"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrad-httpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrad-httpd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8089", "listen address")
	workers := fs.Int("workers", 2, "worker processes")
	variantName := fs.String("variant", "sdrad", "build variant: vanilla, tlsf, or sdrad")
	maxBatch := fs.Int("max-batch", 16, "max pipelined requests parsed per guard scope")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /flightrecorder on this address (empty = telemetry off)")
	usePolicy := fs.Bool("policy", false, "attach the resilience-policy engine: repeated parser rewinds escalate to backoff, then quarantine (503 + Retry-After), then load shedding")
	useSched := fs.Bool("sched", false, "enable the self-tuning batch scheduler: adaptive drain-batch bound (AIMD on load and rewind rate) on the hardened workers (off = the fixed max-batch drain, bit-identical to previous builds)")
	useRoute := fs.Bool("route", false, "with -sched, place new connections on the least-loaded worker (queue depth, EWMA parse latency, rewind-window heat) instead of round-robin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var variant httpd.Variant
	switch *variantName {
	case "vanilla":
		variant = httpd.VariantVanilla
	case "tlsf":
		variant = httpd.VariantTLSF
	case "sdrad":
		variant = httpd.VariantSDRaD
	default:
		return fmt.Errorf("unknown variant %q", *variantName)
	}
	var rec *telemetry.Recorder
	if *telAddr != "" {
		rec = telemetry.New(telemetry.Options{})
	}
	var eng *policy.Engine
	if *usePolicy {
		eng = policy.New(policy.Config{})
	}
	var schedCfg *sched.Config
	if *useSched {
		if variant != httpd.VariantSDRaD {
			return fmt.Errorf("-sched requires -variant sdrad (the scheduler tunes the guard-scope batch bound)")
		}
		schedCfg = &sched.Config{Route: *useRoute}
	} else if *useRoute {
		return fmt.Errorf("-route requires -sched (placement reads the scheduler's load signals)")
	}
	m, err := httpd.NewMaster(httpd.Config{
		Variant:  variant,
		Workers:  *workers,
		MaxBatch: *maxBatch,
		Files: map[string]int{
			"/index.html": 1024,
			"/big.bin":    128 * 1024,
		},
		Telemetry: rec,
		Policy:    eng,
		Sched:     schedCfg,
	})
	if err != nil {
		return err
	}
	defer m.Stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sdrad-httpd (%s, %d workers) listening on %s\n", variant, *workers, ln.Addr())
	if schedCfg != nil {
		fmt.Printf("sched: adaptive batch bound (ceiling %d), load-aware placement %v\n", *maxBatch, *useRoute)
	}
	if eng != nil {
		pc := eng.Config()
		fmt.Printf("policy: backoff at %d, quarantine at %d, shed at %d rewinds per %s window\n",
			pc.BackoffThreshold, pc.QuarantineThreshold, pc.ShedThreshold, pc.Window)
	}
	if rec != nil {
		bound, err := rec.Serve(*telAddr)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("telemetry on http://%s/ (/metrics, /flightrecorder, /forensics)\n", bound)
	}
	fmt.Println("files: /index.html (1KiB), /big.bin (128KiB)")
	return m.ServeListener(ln)
}
