package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

func TestBadVariant(t *testing.T) {
	if err := run([]string{"-variant", "bogus"}); err == nil {
		t.Fatal("bad variant accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestHTTPOverTCP(t *testing.T) {
	addr := "127.0.0.1:18289"
	go func() { _ = run([]string{"-addr", addr, "-workers", "1"}) }()
	var nc net.Conn
	var err error
	for i := 0; i < 50; i++ {
		nc, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = nc.Close() }()
	if _, err := nc.Write([]byte("GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "HTTP/1.1 200") {
		t.Fatalf("status %q err %v", line, err)
	}
}
