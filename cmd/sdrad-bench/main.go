// Command sdrad-bench regenerates the paper's evaluation tables and
// figures on the simulated substrate and prints them as text.
//
// Usage:
//
//	sdrad-bench                  # run every experiment at full scale
//	sdrad-bench -quick           # run every experiment at test scale
//	sdrad-bench -fig4 -fig5      # run selected experiments
//	sdrad-bench -list            # list experiment names
//
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdrad/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdrad-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdrad-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the reduced test scale")
	list := fs.Bool("list", false, "list experiment names and exit")
	subJSON := fs.String("substrate-json", "", "write the substrate report as JSON to this path")
	subBaseline := fs.String("substrate-baseline", "", "compare the substrate report against this JSON baseline; exit non-zero on >10% micro regression")
	telGuard := fs.Bool("telemetry-guard", false, "exit non-zero when an enabled telemetry recorder costs more than 2% YCSB run-phase throughput")
	tputJSON := fs.String("throughput-json", "", "write the scaling-curve throughput report as JSON to this path")
	tputBaseline := fs.String("throughput-baseline", "", "compare the throughput report against this JSON baseline; exit non-zero on >25% speed-adjusted drop")
	recJSON := fs.String("recovery-json", "", "write the recovery-cost report as JSON to this path")
	recBaseline := fs.String("recovery-baseline", "", "gate the recovery report against this JSON baseline; exit non-zero when rewind is not clearly cheaper than restart or its cost regressed")
	clusterJSON := fs.String("cluster-json", "", "write the routed cluster-scaling report as JSON to this path")
	clusterBaseline := fs.String("cluster-baseline", "", "compare the cluster report against this JSON baseline (speed-adjusted) and assert the baseline's CPU-aware scaling gate")
	clusterGate := fs.String("cluster-gate", "", "assert the committed cluster baseline's CPU-aware scaling and availability floors (deterministic; no benchmark run needed)")
	parity := fs.Bool("parity", false, "measure the sdrad/vanilla parity ratio table with paired back-to-back runs")
	parityJSON := fs.String("parity-json", "", "write the parity report as JSON to this path (implies -parity)")
	parityFloor := fs.Float64("parity-floor", 0, "with -parity, exit non-zero when the live headline-cell ratio falls below this floor")
	parityBaseline := fs.String("parity-baseline", "", "assert the committed throughput baseline's headline cell holds sdrad >= 0.97x vanilla (deterministic; no benchmark run needed)")
	schedBench := fs.Bool("sched", false, "measure the self-tuning scheduler cells (idle p99 and fault-storm goodput, adaptive vs fixed)")
	schedJSON := fs.String("sched-json", "", "with -sched, merge the scheduler cells into this throughput-report JSON (read-modify-write; implies -sched)")
	schedGate := fs.String("sched-gate", "", "assert the committed throughput baseline's scheduler cells hold idle <= 1.0x and storm >= 1.15x (deterministic; no benchmark run needed)")
	latencyBench := fs.Bool("latency", false, "measure latency-under-load curves (uniform and hot-conn-skewed offered-rate sweeps, round-robin vs placement+stealing)")
	latencyJSON := fs.String("latency-json", "", "with -latency, write the latency report as JSON to this path (implies -latency)")
	latencyGate := fs.String("latency-gate", "", "assert the committed latency baseline holds the knee p99 ratio >= 1.3x and the uniform p50 tax <= 5% (deterministic; no benchmark run needed)")
	selected := make(map[string]*bool, len(bench.Experiments))
	for _, name := range bench.Experiments {
		selected[name] = fs.Bool(name, false, "run the "+name+" experiment")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
		return nil
	}
	scale := bench.Full
	scaleName := "full"
	if *quick {
		scale = bench.Quick
		scaleName = "quick"
	}
	var toRun []string
	for _, name := range bench.Experiments {
		if *selected[name] {
			toRun = append(toRun, name)
		}
	}
	if (*subJSON != "" || *subBaseline != "" || *telGuard) && !*selected["substrate"] {
		toRun = append(toRun, "substrate")
	}
	if (*tputJSON != "" || *tputBaseline != "") && !*selected["throughput"] {
		toRun = append(toRun, "throughput")
	}
	if (*recJSON != "" || *recBaseline != "") && !*selected["recovery"] {
		toRun = append(toRun, "recovery")
	}
	if (*clusterJSON != "" || *clusterBaseline != "") && !*selected["cluster"] {
		toRun = append(toRun, "cluster")
	}
	parityMode := *parityBaseline != "" || *parity || *parityJSON != ""
	schedMode := *schedBench || *schedJSON != "" || *schedGate != ""
	latencyMode := *latencyBench || *latencyJSON != "" || *latencyGate != ""
	if len(toRun) == 0 && !parityMode && !schedMode && !latencyMode && *clusterGate == "" {
		toRun = bench.Experiments
	}
	fmt.Printf("SDRaD-Go evaluation (scale: %s)\n", scaleName)
	fmt.Printf("Reproducing: Gülmez et al., \"Rewind & Discard\", DSN 2023\n\n")
	// Parity flags form their own mode: the deterministic baseline-ratio
	// assertion and/or the live paired-ratio table run instead of the
	// experiment list (combine with experiment flags to run both).
	if *clusterGate != "" {
		if err := checkClusterGate(*clusterGate); err != nil {
			return err
		}
	}
	if parityMode {
		if *parityBaseline != "" {
			if err := checkParityBaseline(*parityBaseline); err != nil {
				return err
			}
		}
		if *parity || *parityJSON != "" {
			if err := runParity(scale, *parityJSON, *parityFloor); err != nil {
				return fmt.Errorf("parity: %w", err)
			}
		}
	}
	if schedMode {
		if *schedGate != "" {
			if err := checkSchedGate(*schedGate); err != nil {
				return err
			}
		}
		if *schedBench || *schedJSON != "" {
			if err := runSched(scale, *schedJSON); err != nil {
				return fmt.Errorf("sched: %w", err)
			}
		}
	}
	if latencyMode {
		if *latencyGate != "" {
			if err := checkLatencyGate(*latencyGate); err != nil {
				return err
			}
		}
		if *latencyBench || *latencyJSON != "" {
			if err := runLatency(scale, *latencyJSON); err != nil {
				return fmt.Errorf("latency: %w", err)
			}
		}
	}
	for _, name := range toRun {
		if name == "substrate" && (*subJSON != "" || *subBaseline != "" || *telGuard) {
			if err := runSubstrate(scale, *subJSON, *subBaseline, *telGuard); err != nil {
				return fmt.Errorf("substrate: %w", err)
			}
			continue
		}
		if name == "throughput" && (*tputJSON != "" || *tputBaseline != "") {
			if err := runThroughput(scale, *tputJSON, *tputBaseline); err != nil {
				return fmt.Errorf("throughput: %w", err)
			}
			continue
		}
		if name == "recovery" && (*recJSON != "" || *recBaseline != "") {
			if err := runRecovery(scale, *recJSON, *recBaseline); err != nil {
				return fmt.Errorf("recovery: %w", err)
			}
			continue
		}
		if name == "cluster" && (*clusterJSON != "" || *clusterBaseline != "") {
			if err := runCluster(scale, *clusterJSON, *clusterBaseline); err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
			continue
		}
		if err := bench.Run(os.Stdout, name, scale); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// runSubstrate runs the substrate experiment with its JSON side outputs:
// an optional report dump and an optional regression check against a
// committed baseline.
func runSubstrate(scale bench.Scale, jsonPath, baselinePath string, telGuard bool) error {
	rep, table, err := bench.RunSubstrate(scale, nil)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("substrate report written to %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadSubstrateBaseline(baselinePath)
		if err != nil {
			return err
		}
		if err := rep.CheckAgainst(base); err != nil {
			return err
		}
		fmt.Printf("substrate micro metrics within 10%% of baseline %s\n", baselinePath)
	}
	if telGuard {
		if err := rep.CheckTelemetryOverhead(); err != nil {
			return err
		}
		fmt.Println("telemetry-enabled run overhead within the 2% budget")
	}
	return nil
}

// runThroughput runs the scaling-curve experiment with its JSON side
// outputs, mirroring runSubstrate.
func runThroughput(scale bench.Scale, jsonPath, baselinePath string) error {
	rep, table, err := bench.RunThroughput(scale, nil, nil)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("throughput report written to %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadThroughputBaseline(baselinePath)
		if err != nil {
			return err
		}
		if err := rep.CheckAgainst(base); err != nil {
			return err
		}
		fmt.Printf("throughput within 25%% of baseline %s\n", baselinePath)
	}
	return nil
}

// checkParityBaseline asserts the committed throughput baseline's
// headline cell (sdrad w8 d16) holds the parity floor. It runs no
// benchmark — the check divides two recorded numbers — so it is exact
// and immune to runner noise: the gate moves only when someone commits
// a recording that fails it.
func checkParityBaseline(path string) error {
	base, err := bench.LoadThroughputBaseline(path)
	if err != nil {
		return err
	}
	if err := base.CheckParityFloor(bench.ParityHeadlineWorkers, bench.ParityHeadlineDepth, bench.ParityFloor); err != nil {
		return err
	}
	ratio, _ := base.ParityRatio(bench.ParityHeadlineWorkers, bench.ParityHeadlineDepth)
	fmt.Printf("parity: committed baseline %s holds sdrad w%d d%d at %.3fx vanilla (floor %.2fx)\n",
		path, bench.ParityHeadlineWorkers, bench.ParityHeadlineDepth, ratio, bench.ParityFloor)
	return nil
}

// runParity measures the paired sdrad/vanilla ratio table, optionally
// writing the JSON report and gating the live headline ratio against a
// caller-chosen floor (loose by design: live CI runs wear the runner's
// noise; the strict floor lives on the committed baseline).
func runParity(scale bench.Scale, jsonPath string, liveFloor float64) error {
	rep, table, err := bench.RunParity(scale, nil, nil, liveFloor)
	if table != nil {
		table.Fprint(os.Stdout)
	}
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("parity report written to %s\n", jsonPath)
	}
	if liveFloor > 0 {
		fmt.Printf("live parity headline ratio clears the %.2fx floor\n", liveFloor)
	}
	return nil
}

// checkSchedGate asserts the committed throughput baseline's scheduler
// cells hold the idle ceiling and the fault-storm floor. Like the other
// committed-baseline gates it runs no benchmark — runner noise cannot
// flake it; the gate moves only when someone commits a recording that
// fails it.
func checkSchedGate(path string) error {
	base, err := bench.LoadThroughputBaseline(path)
	if err != nil {
		return err
	}
	if err := base.CheckSchedGate(); err != nil {
		return err
	}
	fmt.Printf("sched: committed baseline %s holds idle p99 at %.3fx fixed (ceiling %.2fx) and fault-storm goodput at %.3fx fixed (floor %.2fx)\n",
		path, base.Sched.IdleP99Ratio, bench.SchedIdleCeiling, base.Sched.StormTputRatio, bench.SchedStormFloor)
	return nil
}

// runSched measures the scheduler cells with paired adaptive-vs-fixed
// rounds. With a JSON path, the cells are merged into the existing
// throughput report (read-modify-write) so they live next to the
// scaling cells in BENCH_throughput.json.
func runSched(scale bench.Scale, jsonPath string) error {
	rep, table, err := bench.RunSched(scale)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		base, err := bench.LoadThroughputBaseline(jsonPath)
		if err != nil {
			return err
		}
		base.Sched = rep
		if err := base.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("scheduler cells merged into %s\n", jsonPath)
	}
	return nil
}

// checkLatencyGate asserts the committed latency baseline's knee win and
// uniform-tax ceiling. Like the other committed-baseline gates it runs no
// benchmark — runner noise cannot flake it; the gate moves only when
// someone commits a recording that fails it.
func checkLatencyGate(path string) error {
	base, err := bench.LoadLatencyBaseline(path)
	if err != nil {
		return err
	}
	if err := base.CheckLatencyGate(); err != nil {
		return err
	}
	fmt.Printf("latency: committed baseline %s holds the knee (%.0f req/s) p99 win at %.2fx (floor %.2fx) with uniform p50 tax %.1f%% (ceiling %.1f%%)\n",
		path, base.KneeRate, base.KneeP99Ratio, bench.LatencyKneeFloor,
		base.UniformMaxP50DeltaPct, bench.LatencyUniformTolerancePct)
	return nil
}

// runLatency measures the latency-under-load curves, optionally writing
// the JSON report.
func runLatency(scale bench.Scale, jsonPath string) error {
	rep, table, err := bench.RunLatency(scale)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("latency report written to %s\n", jsonPath)
	}
	return nil
}

// checkClusterGate asserts the committed cluster baseline's CPU-aware
// scaling floor and availability-under-kill floor. Like the parity
// gate it runs no benchmark — it reads recorded numbers — so runner
// noise cannot flake it; the gate moves only when someone commits a
// recording that fails it.
func checkClusterGate(path string) error {
	base, err := bench.LoadClusterBaseline(path)
	if err != nil {
		return err
	}
	if err := base.CheckScaling(); err != nil {
		return err
	}
	fmt.Printf("cluster: committed baseline %s holds 3v1 scaling %.2fx (recorded on %d cpus) with availability %.4f under a mid-run kill\n",
		path, base.Scaling3v1, base.CPUs, base.AvailabilityKill)
	return nil
}

// runCluster runs the routed cluster-scaling experiment with its JSON
// side outputs, mirroring runThroughput.
func runCluster(scale bench.Scale, jsonPath, baselinePath string) error {
	rep, table, err := bench.RunCluster(scale)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("cluster report written to %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadClusterBaseline(baselinePath)
		if err != nil {
			return err
		}
		if err := base.CheckScaling(); err != nil {
			return err
		}
		if err := rep.CheckAgainst(base); err != nil {
			return err
		}
		fmt.Printf("routed throughput within tolerance of baseline %s; baseline scaling gate holds\n", baselinePath)
	}
	return nil
}

// runRecovery runs the recovery-cost experiment with its JSON side
// outputs, mirroring runThroughput.
func runRecovery(scale bench.Scale, jsonPath, baselinePath string) error {
	rep, table, err := bench.RunRecovery(scale)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("recovery report written to %s\n", jsonPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadRecoveryBaseline(baselinePath)
		if err != nil {
			return err
		}
		if err := rep.CheckAgainst(base); err != nil {
			return err
		}
		fmt.Printf("recovery-via-rewind still cheaper than restart; cost within tolerance of baseline %s\n", baselinePath)
	}
	return nil
}
