package main

import (
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-quick", "-rewind-openssl"}); err != nil {
		t.Fatal(err)
	}
}
